"""The full cache/memory hierarchy (Table 1).

32 KB L1I + 32 KB L1D (3-cycle), 1 MB inclusive LLC (18-cycle), stream
prefetcher into the LLC, 64-entry memory queue, DDR3 DRAM.  All core-side
requests funnel through :meth:`MemoryHierarchy.load`,
:meth:`MemoryHierarchy.store_commit` and :meth:`MemoryHierarchy.ifetch`.

Access *kinds* label traffic for the paper's accounting: ``demand`` (and
``store``) are architectural, ``runahead`` are requests issued during any
runahead mode, ``wrongpath`` during branch misspeculation, ``prefetch``
from the stream engine.  Fig. 16 is computed from DRAM-request counts by
kind; MPKI from demand LLC misses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from ..prefetch import StreamPrefetcher
from .cache import Cache, CacheLine
from .controller import MemoryController

# Taxonomy of request kinds; used for DRAM/LLC accounting.
CORE_KINDS = ("demand", "store", "runahead", "wrongpath")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load access."""

    done_cycle: int
    level: str            # "L1", "LLC", or "DRAM" — where the data came from
    merged: bool = False  # satisfied by an in-flight fill (MSHR merge)

    @property
    def llc_miss(self) -> bool:
        return self.level == "DRAM"


class MemoryHierarchy:
    """Composes L1I/L1D/LLC, the memory controller and the prefetcher."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.llc = Cache(config.llc)
        self.controller = MemoryController(config.dram)
        self.prefetcher: Optional[StreamPrefetcher] = (
            StreamPrefetcher(config.prefetcher)
            if config.prefetcher.enabled
            else None
        )
        self._line_shift = config.llc.line_bytes.bit_length() - 1
        self.llc.eviction_hook = self._on_llc_eviction
        # Traffic accounting.
        self.llc_misses: dict[str, int] = {k: 0 for k in CORE_KINDS}
        self.llc_accesses: dict[str, int] = {k: 0 for k in CORE_KINDS}
        self.ifetch_llc_misses = 0
        # Outstanding LLC fills (MSHR occupancy): completion-cycle heap.
        self._fills: list[int] = []
        self.mshr_rejections = 0

    # -- address helpers ---------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    # -- inclusion / FDP hook -----------------------------------------------------

    def _on_llc_eviction(self, line_addr: int, line) -> None:
        # Inclusive LLC: back-invalidate the L1s.
        self.l1d.invalidate(line_addr)
        self.l1i.invalidate(line_addr)
        if line.dirty:
            # Writeback traffic occupies DRAM but nothing waits on it.
            self.controller.request(line_addr, 0, is_write=True, kind="writeback")
        if (self.prefetcher is not None and line.prefetched
                and not line.referenced):
            self.prefetcher.record_unused_eviction()

    def _fdp_demand_touch(self, line, now: int) -> None:
        if (self.prefetcher is not None and line.prefetched
                and not line.referenced):
            line.referenced = True
            self.prefetcher.record_useful(late=line.ready_cycle > now)

    # -- MSHR occupancy -------------------------------------------------------------

    # Speculative requests (runahead, prefetch) may not take the last few
    # MSHRs: demand misses must never queue behind a speculative flood.
    _SPECULATIVE_RESERVE = 4

    def _mshr_free_at(self, now: int, kind: str = "demand") -> int:
        """0 if an LLC MSHR is free at ``now``, else the cycle one frees."""
        fills = self._fills
        while fills and fills[0] <= now:
            heapq.heappop(fills)
        limit = self.config.llc.mshrs
        if kind in ("runahead", "prefetch"):
            limit -= self._SPECULATIVE_RESERVE
        if len(fills) < limit:
            return 0
        if not fills:
            # Degenerate config: fewer MSHRs than the speculative
            # reserve, so no slot ever frees for this kind — bounce a
            # cycle at a time (prefetches are simply dropped; runahead
            # loads retry until the interval ends).
            return now + 1
        # Conservative retry point: the earliest completion.  The caller
        # may retry while still over the limit and be bounced again; each
        # bounce moves it forward, so progress is guaranteed.
        return fills[0]

    def _register_fill(self, done: int) -> None:
        heapq.heappush(self._fills, done)

    def mshr_occupancy(self, now: int) -> int:
        """LLC MSHRs in flight at ``now``.  Non-mutating (unlike
        ``_mshr_free_at``) so observers can sample it anywhere without
        perturbing the heap-drain schedule."""
        return sum(1 for done in self._fills if done > now)

    # -- prefetch issue -----------------------------------------------------------

    def _issue_prefetches(self, lines: list[int], now: int) -> None:
        for line_addr in lines:
            if self.llc.probe(line_addr):
                continue
            if self._mshr_free_at(now, "prefetch"):
                continue  # MSHRs full: drop the prefetch
            done = self.controller.request(line_addr, now, kind="prefetch")
            self._register_fill(done)
            self.llc.fill(line_addr, done, prefetched=True)

    # -- core-side interface --------------------------------------------------------

    def load(self, addr: int, now: int, kind: str = "demand") -> AccessResult:
        """A data load; returns completion cycle and serving level.

        When the access would allocate a new LLC MSHR and all MSHRs are
        busy, returns level ``"RETRY"`` with ``done_cycle`` set to the
        cycle an MSHR frees — the core must re-issue the load.  This is
        the backpressure that bounds how far any runahead mode can run.
        """
        line_addr = addr >> self._line_shift
        l1d = self.l1d
        # Single L1D lookup: a miss has no side effects (no LRU update, no
        # stats), so probing first would be redundant work on every access.
        line = l1d.lookup(line_addr)
        l1_latency = l1d.latency
        if line is not None:
            if line.ready_cycle <= now:
                l1d.stats.hits += 1
                return AccessResult(now + l1_latency, "L1")
            # Fill in flight: merge with it.
            l1d.stats.fill_hits += 1
            return AccessResult(
                max(line.ready_cycle, now + l1_latency), "L1", merged=True
            )
        if not self.llc.probe(line_addr):
            free_at = self._mshr_free_at(now, kind)
            if free_at:
                self.mshr_rejections += 1
                return AccessResult(free_at, "RETRY")
        l1d.stats.misses += 1
        return self._llc_load(line_addr, now + l1_latency, kind, fill_l1=True)

    def _llc_load(self, line_addr: int, now: int, kind: str,
                  fill_l1: bool) -> AccessResult:
        llc_latency = self.llc.latency
        self.llc_accesses[kind] = self.llc_accesses.get(kind, 0) + 1
        line = self.llc.lookup(line_addr)
        if line is not None:
            self._fdp_demand_touch(line, now)
            if line.ready_cycle <= now:
                self.llc.stats.hits += 1
                done = now + llc_latency
                level, merged = "LLC", False
            else:
                self.llc.stats.fill_hits += 1
                done = max(line.ready_cycle, now + llc_latency)
                # Merged with an outstanding DRAM fill: the data still comes
                # from DRAM, which matters for runahead-entry decisions.
                level, merged = "DRAM", True
        else:
            self.llc.stats.misses += 1
            self.llc_misses[kind] = self.llc_misses.get(kind, 0) + 1
            done = self.controller.request(line_addr, now + llc_latency,
                                           kind=kind)
            self._register_fill(done)
            self.llc.fill(line_addr, done)
            level, merged = "DRAM", False
        if self.prefetcher is not None:
            hits = line is not None
            self._issue_prefetches(
                self.prefetcher.on_demand_access(line_addr, hits), now
            )
        if fill_l1:
            self.l1d.fill(line_addr, done)
        return AccessResult(done, level, merged=merged)

    def store_commit(self, addr: int, now: int, kind: str = "store") -> None:
        """An architecturally committed store (write-allocate, write-back).

        Nothing waits on stores (they drain from a store buffer), so this
        only updates cache/DRAM state and traffic counters.
        """
        line_addr = self.line_of(addr)
        line = self.l1d.lookup(line_addr)
        if line is not None:
            self.l1d.stats.hits += 1
            line.dirty = True
            return
        self.l1d.stats.misses += 1
        result = self._llc_load(line_addr, now + self.l1d.latency, kind,
                                fill_l1=True)
        self.l1d.mark_dirty(line_addr)
        del result

    def ifetch(self, addr: int, now: int) -> int:
        """Instruction fetch of one line; returns completion cycle."""
        line_addr = self.line_of(addr)
        line = self.l1i.lookup(line_addr)
        if line is not None:
            if line.ready_cycle <= now:
                self.l1i.stats.hits += 1
                return now + self.l1i.latency
            self.l1i.stats.fill_hits += 1
            return max(line.ready_cycle, now + self.l1i.latency)
        self.l1i.stats.misses += 1
        t = now + self.l1i.latency
        llc_line = self.llc.lookup(line_addr)
        if llc_line is not None and llc_line.ready_cycle <= t:
            self.llc.stats.hits += 1
            done = t + self.llc.latency
        elif llc_line is not None:
            self.llc.stats.fill_hits += 1
            done = llc_line.ready_cycle
        else:
            self.llc.stats.misses += 1
            self.ifetch_llc_misses += 1
            done = self.controller.request(line_addr, t + self.llc.latency,
                                           kind="ifetch")
            self.llc.fill(line_addr, done)
        self.l1i.fill(line_addr, done)
        return done

    # -- warm-up support --------------------------------------------------------

    def warm_load(self, addr: int) -> None:
        """Functionally warm the caches (no timing, no prefetcher training)."""
        line_addr = addr >> self._line_shift
        if self.l1d.lookup(line_addr) is not None:
            return
        if self.llc.lookup(line_addr) is None:
            self.llc.fill(line_addr, 0)
        self.l1d.fill(line_addr, 0)

    def warm_ifetch(self, addr: int) -> None:
        line_addr = self.line_of(addr)
        if not self.llc.probe(line_addr):
            self.llc.fill(line_addr, 0)
        self.l1i.fill(line_addr, 0)

    # -- flattened warm paths (jit fast-forward lane only) ----------------------
    #
    # Bit-identical re-implementations of the warm paths above with the
    # per-level call tree (lookup/probe/fill/invalidate/eviction hook)
    # flattened into straight-line dict operations.  Only the jit
    # fast-forward lane binds these; the interp lane keeps the reference
    # implementations, and tests/test_blockjit.py differentially checks
    # the two against each other.  Must be kept in lockstep with
    # ``Cache.fill``/``Cache.lookup``/``_on_llc_eviction``.

    def _warm_llc_fill(self, line_addr: int, lset) -> None:
        """``llc.fill(line_addr, 0)`` for a line known absent from
        ``lset`` (its set) and not the LLC MRU entry."""
        llc = self.llc
        ln = None
        if len(lset) >= llc.assoc:
            va, vl = lset.popitem(last=False)
            st = llc.stats
            st.evictions += 1
            llc._resident -= 1
            if vl.dirty or vl.prefetched:
                # Writeback / FDP accounting: rare, take the full hook.
                if vl.dirty:
                    st.writebacks += 1
                if va == llc._mru_key:
                    llc._mru_key = -1
                    llc._mru_line = None
                self._on_llc_eviction(va, vl)
            else:
                # Common case of _on_llc_eviction: back-invalidate L1s.
                # The victim MRU-clear is dead here (the tail below
                # reassigns the MRU unconditionally) and the clean victim
                # never escapes, so its line object is recycled as the
                # fresh CacheLine(0), field for field.
                l1d = self.l1d
                if l1d._sets[va % l1d.num_sets].pop(va, None) is not None:
                    l1d.stats.invalidations += 1
                    l1d._resident -= 1
                    if va == l1d._mru_key:
                        l1d._mru_key = -1
                        l1d._mru_line = None
                l1i = self.l1i
                if l1i._sets[va % l1i.num_sets].pop(va, None) is not None:
                    l1i.stats.invalidations += 1
                    l1i._resident -= 1
                    if va == l1i._mru_key:
                        l1i._mru_key = -1
                        l1i._mru_line = None
                vl.ready_cycle = 0
                vl.referenced = False
                ln = vl
        if ln is None:
            ln = CacheLine(0)
        lset[line_addr] = ln
        llc._resident += 1
        llc._mru_key = line_addr
        llc._mru_line = ln

    def warm_load_miss(self, line_addr: int) -> None:
        """L1D-miss continuation of :meth:`warm_load`, taking the *line*
        address: the caller (generated block code) has already
        established the line is neither the L1D MRU entry nor resident
        in its L1D set."""
        llc = self.llc
        if line_addr != llc._mru_key:
            lset = llc._sets[line_addr % llc.num_sets]
            lln = lset.get(line_addr)
            if lln is not None:
                # Touching LLC lookup hit.
                lset.move_to_end(line_addr)
                llc._mru_key = line_addr
                llc._mru_line = lln
            else:
                # _warm_llc_fill, inlined: pointer-chasing workloads take
                # this path on nearly every load miss, so the call frame
                # is worth eliding.
                ln = None
                if len(lset) >= llc.assoc:
                    va, vl = lset.popitem(last=False)
                    st = llc.stats
                    st.evictions += 1
                    llc._resident -= 1
                    if vl.dirty or vl.prefetched:
                        if vl.dirty:
                            st.writebacks += 1
                        if va == llc._mru_key:
                            llc._mru_key = -1
                            llc._mru_line = None
                        self._on_llc_eviction(va, vl)
                    else:
                        l1d = self.l1d
                        if (l1d._sets[va % l1d.num_sets].pop(va, None)
                                is not None):
                            l1d.stats.invalidations += 1
                            l1d._resident -= 1
                            if va == l1d._mru_key:
                                l1d._mru_key = -1
                                l1d._mru_line = None
                        l1i = self.l1i
                        if (l1i._sets[va % l1i.num_sets].pop(va, None)
                                is not None):
                            l1i.stats.invalidations += 1
                            l1i._resident -= 1
                            if va == l1i._mru_key:
                                l1i._mru_key = -1
                                l1i._mru_line = None
                        vl.ready_cycle = 0
                        vl.referenced = False
                        ln = vl
                if ln is None:
                    ln = CacheLine(0)
                lset[line_addr] = ln
                llc._resident += 1
                llc._mru_key = line_addr
                llc._mru_line = ln
        # l1d.fill(line_addr, 0): the line is still absent (the back-
        # invalidation above only removes), so only the victim path of
        # Cache.fill applies.
        l1d = self.l1d
        dset = l1d._sets[line_addr % l1d.num_sets]
        if len(dset) >= l1d.assoc:
            # Victim MRU-clear elided (the tail reassigns MRU); the
            # victim line object is recycled as the fresh CacheLine(0).
            va, vl = dset.popitem(last=False)
            st = l1d.stats
            st.evictions += 1
            if vl.dirty:
                st.writebacks += 1
                vl.dirty = False
            vl.ready_cycle = 0
            vl.prefetched = False
            vl.referenced = False
            ln = vl
        else:
            ln = CacheLine(0)
            l1d._resident += 1
        dset[line_addr] = ln
        l1d._mru_key = line_addr
        l1d._mru_line = ln

    def warm_ifetch_line(self, line_addr: int) -> None:
        """Bit-identical to :meth:`warm_ifetch`, flattened, taking the
        *line* address (the generated code folds ``pc*4 >> shift`` to a
        literal at translate time)."""
        llc = self.llc
        if line_addr != llc._mru_key:
            lset = llc._sets[line_addr % llc.num_sets]
            if line_addr not in lset:
                self._warm_llc_fill(line_addr, lset)
        # l1i.fill(line_addr, 0), full Cache.fill semantics.
        l1i = self.l1i
        if line_addr == l1i._mru_key:
            ln = l1i._mru_line
            if ln.ready_cycle > 0:
                ln.ready_cycle = 0
            return
        iset = l1i._sets[line_addr % l1i.num_sets]
        ln = iset.get(line_addr)
        if ln is not None:
            if ln.ready_cycle > 0:
                ln.ready_cycle = 0
            iset.move_to_end(line_addr)
            l1i._mru_key = line_addr
            l1i._mru_line = ln
            return
        if len(iset) >= l1i.assoc:
            va, vl = iset.popitem(last=False)
            st = l1i.stats
            st.evictions += 1
            if vl.dirty:
                st.writebacks += 1
                vl.dirty = False
            vl.ready_cycle = 0
            vl.prefetched = False
            vl.referenced = False
            ln = vl
        else:
            ln = CacheLine(0)
            l1i._resident += 1
        iset[line_addr] = ln
        l1i._mru_key = line_addr
        l1i._mru_line = ln

    # -- warm-state snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the hierarchy carries between bursts: all three
        cache arrays in LRU order, the traffic accounting, the MSHR fill
        heap, the DRAM controller (bank rows, reservations, stats), and
        the stream prefetcher.  Plain data only — pickles, digests, and
        round-trips through :meth:`restore` exactly (see
        ``repro.fastpath.checkpoint``)."""
        return {
            "l1i": self.l1i.snapshot(),
            "l1d": self.l1d.snapshot(),
            "llc": self.llc.snapshot(),
            "llc_misses": tuple(sorted(self.llc_misses.items())),
            "llc_accesses": tuple(sorted(self.llc_accesses.items())),
            "ifetch_llc_misses": self.ifetch_llc_misses,
            "fills": tuple(self._fills),
            "mshr_rejections": self.mshr_rejections,
            "controller": self.controller.snapshot(),
            "prefetcher": (None if self.prefetcher is None
                           else self.prefetcher.snapshot()),
        }

    def restore(self, snap: dict) -> None:
        self.l1i.restore(snap["l1i"])
        self.l1d.restore(snap["l1d"])
        self.llc.restore(snap["llc"])
        self.llc_misses = dict(snap["llc_misses"])
        self.llc_accesses = dict(snap["llc_accesses"])
        self.ifetch_llc_misses = snap["ifetch_llc_misses"]
        self._fills = list(snap["fills"])
        heapq.heapify(self._fills)
        self.mshr_rejections = snap["mshr_rejections"]
        self.controller.restore(snap["controller"])
        if self.prefetcher is not None and snap["prefetcher"] is not None:
            self.prefetcher.restore(snap["prefetcher"])

    # -- reporting ----------------------------------------------------------------

    def demand_llc_misses(self) -> int:
        return self.llc_misses["demand"] + self.llc_misses["store"]

    def dram_requests(self) -> int:
        return self.controller.stats.requests
