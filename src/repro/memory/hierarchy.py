"""The full cache/memory hierarchy (Table 1).

32 KB L1I + 32 KB L1D (3-cycle), 1 MB inclusive LLC (18-cycle), stream
prefetcher into the LLC, 64-entry memory queue, DDR3 DRAM.  All core-side
requests funnel through :meth:`MemoryHierarchy.load`,
:meth:`MemoryHierarchy.store_commit` and :meth:`MemoryHierarchy.ifetch`.

Structurally the hierarchy is now only the *private* half of the machine:
the L1s plus a :class:`~repro.memory.ports.MemoryPort` into the LLC/DRAM
complex (:class:`~repro.memory.shared.SharedLLC`).  A hierarchy built
without an explicit ``shared=`` argument constructs a private complex, so
the legacy single-core construction is one core wired to its own LLC —
the request arithmetic lives in the complex but runs in the same order
with the same operands, and the golden grid pins that it is bit-identical.
``repro.multicore`` passes one complex to N hierarchies instead.

Access *kinds* label traffic for the paper's accounting: ``demand`` (and
``store``) are architectural, ``runahead`` are requests issued during any
runahead mode, ``wrongpath`` during branch misspeculation, ``prefetch``
from the stream engine.  Fig. 16 is computed from DRAM-request counts by
kind; MPKI from demand LLC misses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from .cache import Cache, CacheLine
from .ports import DirectLink, MemRequest
from .shared import CORE_KINDS, SharedLLC

__all__ = ["AccessResult", "CORE_KINDS", "MemoryHierarchy"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load access."""

    done_cycle: int
    level: str            # "L1", "LLC", or "DRAM" — where the data came from
    merged: bool = False  # satisfied by an in-flight fill (MSHR merge)

    @property
    def llc_miss(self) -> bool:
        return self.level == "DRAM"


class MemoryHierarchy:
    """One core's L1I/L1D plus a port into the LLC/DRAM complex."""

    # Re-exported from the shared complex: tests and callers historically
    # read the reserve off the hierarchy.
    _SPECULATIVE_RESERVE = SharedLLC._SPECULATIVE_RESERVE

    def __init__(self, config: SystemConfig,
                 shared: Optional[SharedLLC] = None) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.shared = SharedLLC(config) if shared is None else shared
        self.core_id, self._acct = self.shared.connect(self)
        self.port = DirectLink(self.shared)
        # Aliases into the complex.  These are the *same objects* the
        # complex owns, so every historical attribute path — stats
        # readers, tracer shadows on ``controller.request``, the warm
        # fast-forward helpers below — keeps working unchanged.
        self.llc = self.shared.llc
        self.controller = self.shared.controller
        self.prefetcher = self.shared.prefetcher
        # Traffic accounting: per-core dicts owned by the complex's
        # CoreAccount, aliased here (restore() must update in place).
        self.llc_misses: dict[str, int] = self._acct.llc_misses
        self.llc_accesses: dict[str, int] = self._acct.llc_accesses
        self._line_shift = config.llc.line_bytes.bit_length() - 1
        self.mshr_rejections = 0

    @property
    def is_shared(self) -> bool:
        """True when the LLC/DRAM complex is shared with other cores (or
        externally owned), i.e. this hierarchy is not the sole owner of
        the memory state below its L1s."""
        return self.shared.is_shared

    # -- per-core counters living in the complex's CoreAccount -------------------

    @property
    def ifetch_llc_misses(self) -> int:
        return self._acct.ifetch_llc_misses

    @ifetch_llc_misses.setter
    def ifetch_llc_misses(self, value: int) -> None:
        self._acct.ifetch_llc_misses = value

    @property
    def _fills(self) -> list[int]:
        return self.shared._fills

    @_fills.setter
    def _fills(self, value: list[int]) -> None:
        self.shared._fills = value

    # -- address helpers ---------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    # -- inclusion / FDP hook -----------------------------------------------------

    def _on_llc_eviction(self, line_addr: int, line) -> None:
        # The complex owns the eviction policy; this delegate exists for
        # the flattened warm helpers below, which dispatch through the
        # instance so a tracer shadow still sees rare-path evictions.
        self.shared._on_evict(line_addr, line)

    # -- MSHR occupancy -------------------------------------------------------------

    def _mshr_free_at(self, now: int, kind: str = "demand") -> int:
        """0 if an LLC MSHR is free at ``now``, else the cycle one frees."""
        return self.shared._mshr_block(now, kind, self.core_id)

    def _register_fill(self, done: int) -> None:
        self.shared._register_fill(done, self.core_id)

    def mshr_occupancy(self, now: int) -> int:
        """LLC MSHRs in flight at ``now``.  Non-mutating (unlike
        ``_mshr_free_at``) so observers can sample it anywhere without
        perturbing the heap-drain schedule."""
        return self.shared.mshr_occupancy(now)

    # -- prefetch issue -----------------------------------------------------------

    def _issue_prefetches(self, lines: list[int], now: int) -> None:
        # Class-level delegate (never an instance attribute: the zero-
        # cost-observability contract in tests/test_obs.py shadows it
        # per-instance when tracing).  The complex routes prefetch issue
        # back through this seam so per-core traces see their own issues.
        self.shared.issue_prefetches(lines, now, self.core_id)

    # -- core-side interface --------------------------------------------------------

    def load(self, addr: int, now: int, kind: str = "demand") -> AccessResult:
        """A data load; returns completion cycle and serving level.

        When the access would allocate a new LLC MSHR and all MSHRs are
        busy, the port refuses the request and this returns level
        ``"RETRY"`` with ``done_cycle`` set to the cycle an MSHR frees —
        the core must re-issue the load.  This is the backpressure that
        bounds how far any runahead mode can run.
        """
        line_addr = addr >> self._line_shift
        l1d = self.l1d
        # Single L1D lookup: a miss has no side effects (no LRU update, no
        # stats), so probing first would be redundant work on every access.
        line = l1d.lookup(line_addr)
        l1_latency = l1d.latency
        if line is not None:
            if line.ready_cycle <= now:
                l1d.stats.hits += 1
                return AccessResult(now + l1_latency, "L1")
            # Fill in flight: merge with it.
            l1d.stats.fill_hits += 1
            return AccessResult(
                max(line.ready_cycle, now + l1_latency), "L1", merged=True
            )
        port = self.port
        req = MemRequest(line_addr, now + l1_latency, kind, self.core_id,
                         gate_cycle=now, gated=True)
        if not port.try_send(req):
            self.mshr_rejections += 1
            return AccessResult(port.retry_at, "RETRY")
        l1d.stats.misses += 1
        resp = port.recv()
        l1d.fill(line_addr, resp.done_cycle)
        return AccessResult(resp.done_cycle, resp.level, merged=resp.merged)

    def store_commit(self, addr: int, now: int, kind: str = "store") -> None:
        """An architecturally committed store (write-allocate, write-back).

        Nothing waits on stores (they drain from a store buffer), so this
        only updates cache/DRAM state and traffic counters — and the
        request is ungated: a store may not be refused by MSHR pressure.
        """
        line_addr = self.line_of(addr)
        l1d = self.l1d
        line = l1d.lookup(line_addr)
        if line is not None:
            l1d.stats.hits += 1
            line.dirty = True
            return
        l1d.stats.misses += 1
        port = self.port
        port.try_send(MemRequest(line_addr, now + l1d.latency, kind,
                                 self.core_id))
        resp = port.recv()
        l1d.fill(line_addr, resp.done_cycle)
        l1d.mark_dirty(line_addr)

    def ifetch(self, addr: int, now: int) -> int:
        """Instruction fetch of one line; returns completion cycle."""
        line_addr = self.line_of(addr)
        l1i = self.l1i
        line = l1i.lookup(line_addr)
        if line is not None:
            if line.ready_cycle <= now:
                l1i.stats.hits += 1
                return now + l1i.latency
            l1i.stats.fill_hits += 1
            return max(line.ready_cycle, now + l1i.latency)
        l1i.stats.misses += 1
        port = self.port
        port.try_send(MemRequest(line_addr, now + l1i.latency, "ifetch",
                                 self.core_id))
        done = port.recv().done_cycle
        l1i.fill(line_addr, done)
        return done

    # -- warm-up support --------------------------------------------------------

    def warm_load(self, addr: int) -> None:
        """Functionally warm the caches (no timing, no prefetcher training)."""
        line_addr = addr >> self._line_shift
        if self.l1d.lookup(line_addr) is not None:
            return
        if self.llc.lookup(line_addr) is None:
            self.llc.fill(line_addr, 0)
            if self.shared._mc:
                # Ownership survives warm-up so the timed run can tell a
                # cross-core eviction of warm state from a self-eviction.
                self.shared._line_owner[line_addr] = self.core_id
        self.l1d.fill(line_addr, 0)

    def warm_ifetch(self, addr: int) -> None:
        line_addr = self.line_of(addr)
        if not self.llc.probe(line_addr):
            self.llc.fill(line_addr, 0)
            if self.shared._mc:
                self.shared._line_owner[line_addr] = self.core_id
        self.l1i.fill(line_addr, 0)

    # -- flattened warm paths (jit fast-forward lane only) ----------------------
    #
    # Bit-identical re-implementations of the warm paths above with the
    # per-level call tree (lookup/probe/fill/invalidate/eviction hook)
    # flattened into straight-line dict operations.  Only the jit
    # fast-forward lane binds these; the interp lane keeps the reference
    # implementations, and tests/test_blockjit.py differentially checks
    # the two against each other.  Must be kept in lockstep with
    # ``Cache.fill``/``Cache.lookup``/``SharedLLC._on_evict``.
    #
    # The inlined clean-victim path back-invalidates only *this* core's
    # L1s, which is wrong once the LLC is shared — Processor.fast_forward
    # therefore forces the interp lane whenever ``is_shared``.

    def _warm_llc_fill(self, line_addr: int, lset) -> None:
        """``llc.fill(line_addr, 0)`` for a line known absent from
        ``lset`` (its set) and not the LLC MRU entry."""
        llc = self.llc
        ln = None
        if len(lset) >= llc.assoc:
            va, vl = lset.popitem(last=False)
            st = llc.stats
            st.evictions += 1
            llc._resident -= 1
            if vl.dirty or vl.prefetched:
                # Writeback / FDP accounting: rare, take the full hook.
                if vl.dirty:
                    st.writebacks += 1
                if va == llc._mru_key:
                    llc._mru_key = -1
                    llc._mru_line = None
                self._on_llc_eviction(va, vl)
            else:
                # Common case of the eviction hook: back-invalidate L1s.
                # The victim MRU-clear is dead here (the tail below
                # reassigns the MRU unconditionally) and the clean victim
                # never escapes, so its line object is recycled as the
                # fresh CacheLine(0), field for field.
                l1d = self.l1d
                if l1d._sets[va % l1d.num_sets].pop(va, None) is not None:
                    l1d.stats.invalidations += 1
                    l1d._resident -= 1
                    if va == l1d._mru_key:
                        l1d._mru_key = -1
                        l1d._mru_line = None
                l1i = self.l1i
                if l1i._sets[va % l1i.num_sets].pop(va, None) is not None:
                    l1i.stats.invalidations += 1
                    l1i._resident -= 1
                    if va == l1i._mru_key:
                        l1i._mru_key = -1
                        l1i._mru_line = None
                vl.ready_cycle = 0
                vl.referenced = False
                ln = vl
        if ln is None:
            ln = CacheLine(0)
        lset[line_addr] = ln
        llc._resident += 1
        llc._mru_key = line_addr
        llc._mru_line = ln

    def warm_load_miss(self, line_addr: int) -> None:
        """L1D-miss continuation of :meth:`warm_load`, taking the *line*
        address: the caller (generated block code) has already
        established the line is neither the L1D MRU entry nor resident
        in its L1D set."""
        llc = self.llc
        if line_addr != llc._mru_key:
            lset = llc._sets[line_addr % llc.num_sets]
            lln = lset.get(line_addr)
            if lln is not None:
                # Touching LLC lookup hit.
                lset.move_to_end(line_addr)
                llc._mru_key = line_addr
                llc._mru_line = lln
            else:
                # _warm_llc_fill, inlined: pointer-chasing workloads take
                # this path on nearly every load miss, so the call frame
                # is worth eliding.
                ln = None
                if len(lset) >= llc.assoc:
                    va, vl = lset.popitem(last=False)
                    st = llc.stats
                    st.evictions += 1
                    llc._resident -= 1
                    if vl.dirty or vl.prefetched:
                        if vl.dirty:
                            st.writebacks += 1
                        if va == llc._mru_key:
                            llc._mru_key = -1
                            llc._mru_line = None
                        self._on_llc_eviction(va, vl)
                    else:
                        l1d = self.l1d
                        if (l1d._sets[va % l1d.num_sets].pop(va, None)
                                is not None):
                            l1d.stats.invalidations += 1
                            l1d._resident -= 1
                            if va == l1d._mru_key:
                                l1d._mru_key = -1
                                l1d._mru_line = None
                        l1i = self.l1i
                        if (l1i._sets[va % l1i.num_sets].pop(va, None)
                                is not None):
                            l1i.stats.invalidations += 1
                            l1i._resident -= 1
                            if va == l1i._mru_key:
                                l1i._mru_key = -1
                                l1i._mru_line = None
                        vl.ready_cycle = 0
                        vl.referenced = False
                        ln = vl
                if ln is None:
                    ln = CacheLine(0)
                lset[line_addr] = ln
                llc._resident += 1
                llc._mru_key = line_addr
                llc._mru_line = ln
        # l1d.fill(line_addr, 0): the line is still absent (the back-
        # invalidation above only removes), so only the victim path of
        # Cache.fill applies.
        l1d = self.l1d
        dset = l1d._sets[line_addr % l1d.num_sets]
        if len(dset) >= l1d.assoc:
            # Victim MRU-clear elided (the tail reassigns MRU); the
            # victim line object is recycled as the fresh CacheLine(0).
            va, vl = dset.popitem(last=False)
            st = l1d.stats
            st.evictions += 1
            if vl.dirty:
                st.writebacks += 1
                vl.dirty = False
            vl.ready_cycle = 0
            vl.prefetched = False
            vl.referenced = False
            ln = vl
        else:
            ln = CacheLine(0)
            l1d._resident += 1
        dset[line_addr] = ln
        l1d._mru_key = line_addr
        l1d._mru_line = ln

    def warm_ifetch_line(self, line_addr: int) -> None:
        """Bit-identical to :meth:`warm_ifetch`, flattened, taking the
        *line* address (the generated code folds ``pc*4 >> shift`` to a
        literal at translate time)."""
        llc = self.llc
        if line_addr != llc._mru_key:
            lset = llc._sets[line_addr % llc.num_sets]
            if line_addr not in lset:
                self._warm_llc_fill(line_addr, lset)
        # l1i.fill(line_addr, 0), full Cache.fill semantics.
        l1i = self.l1i
        if line_addr == l1i._mru_key:
            ln = l1i._mru_line
            if ln.ready_cycle > 0:
                ln.ready_cycle = 0
            return
        iset = l1i._sets[line_addr % l1i.num_sets]
        ln = iset.get(line_addr)
        if ln is not None:
            if ln.ready_cycle > 0:
                ln.ready_cycle = 0
            iset.move_to_end(line_addr)
            l1i._mru_key = line_addr
            l1i._mru_line = ln
            return
        if len(iset) >= l1i.assoc:
            va, vl = iset.popitem(last=False)
            st = l1i.stats
            st.evictions += 1
            if vl.dirty:
                st.writebacks += 1
                vl.dirty = False
            vl.ready_cycle = 0
            vl.prefetched = False
            vl.referenced = False
            ln = vl
        else:
            ln = CacheLine(0)
            l1i._resident += 1
        iset[line_addr] = ln
        l1i._mru_key = line_addr
        l1i._mru_line = ln

    # -- warm-state snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the hierarchy carries between bursts: all three
        cache arrays in LRU order, the traffic accounting, the MSHR fill
        heap, the DRAM controller (bank rows, reservations, stats), and
        the stream prefetcher.  Plain data only — pickles, digests, and
        round-trips through :meth:`restore` exactly (see
        ``repro.fastpath.checkpoint``).  Only meaningful for a privately
        owned complex; Processor.snapshot refuses shared hierarchies
        before reaching this."""
        return {
            "l1i": self.l1i.snapshot(),
            "l1d": self.l1d.snapshot(),
            "llc": self.llc.snapshot(),
            "llc_misses": tuple(sorted(self.llc_misses.items())),
            "llc_accesses": tuple(sorted(self.llc_accesses.items())),
            "ifetch_llc_misses": self.ifetch_llc_misses,
            "fills": tuple(self._fills),
            "mshr_rejections": self.mshr_rejections,
            "controller": self.controller.snapshot(),
            "prefetcher": (None if self.prefetcher is None
                           else self.prefetcher.snapshot()),
        }

    def restore(self, snap: dict) -> None:
        self.l1i.restore(snap["l1i"])
        self.l1d.restore(snap["l1d"])
        self.llc.restore(snap["llc"])
        # In-place: these dicts are aliases of the complex's CoreAccount.
        self.llc_misses.clear()
        self.llc_misses.update(dict(snap["llc_misses"]))
        self.llc_accesses.clear()
        self.llc_accesses.update(dict(snap["llc_accesses"]))
        self.ifetch_llc_misses = snap["ifetch_llc_misses"]
        self._fills = list(snap["fills"])
        heapq.heapify(self._fills)
        self.mshr_rejections = snap["mshr_rejections"]
        self.controller.restore(snap["controller"])
        if self.prefetcher is not None and snap["prefetcher"] is not None:
            self.prefetcher.restore(snap["prefetcher"])

    # -- reporting ----------------------------------------------------------------

    def demand_llc_misses(self) -> int:
        return self.llc_misses["demand"] + self.llc_misses["store"]

    def dram_requests(self) -> int:
        return self.controller.stats.requests
