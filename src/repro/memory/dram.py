"""DDR3 DRAM timing model (Table 1: Micron MT41J512M4-style DDR3).

Two channels, eight banks per channel, 8 KB rows.  Bank state (open row,
next-free time) and channel data-bus serialization are modelled, which is
what produces bank conflicts and queuing delays.  Timing parameters are in
*core* cycles (3.2 GHz core; CAS 13.75 ns = 44 cycles).

The model is "reservation-based": a request's completion time is computed
when it reaches the controller, updating bank/bus reservations — this is
equivalent to an FR-FCFS schedule for requests issued in arrival order and
avoids per-cycle ticking (critical for a Python-hosted simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DramConfig


@dataclass
class BankState:
    next_free: int = 0
    open_row: int | None = None


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0      # bank had no open row
    row_conflicts: int = 0   # bank had a different row open
    activates: int = 0
    busiest_wait: int = 0    # max cycles a request waited for its bank
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.reads + self.writes


class DramChannel:
    """One DDR3 channel: a set of banks plus a shared data bus."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.banks = [BankState() for _ in range(config.banks_per_channel)]
        self.bus_free = 0

    def service(self, bank_index: int, row: int, now: int, stats: DramStats,
                priority: bool = False) -> int:
        """Schedule one line transfer; returns the data-return cycle.

        ``priority`` models demand-first FR-FCFS scheduling: a demand
        read does not wait behind the whole speculative backlog — its
        interference is capped at roughly one in-flight access (the
        controller reorders it to the front of the bank queue).
        """
        cfg = self.config
        bank = self.banks[bank_index]
        if priority:
            cap = now + cfg.t_rp + cfg.t_burst
            start = max(now, min(bank.next_free, cap))
        else:
            start = max(now, bank.next_free)
        stats.busiest_wait = max(stats.busiest_wait, start - now)
        if (bank.open_row is not None
                and start - bank.next_free > cfg.row_timeout):
            # Bank idle too long: the controller's page policy (and
            # refresh) closed the row in the meantime.  Measured from the
            # end of the previous request, so a bank actively serving a
            # burst keeps its row open.
            bank.open_row = None
        if bank.open_row == row:
            access = cfg.t_cas
            stats.row_hits += 1
        elif bank.open_row is None:
            access = cfg.t_rcd + cfg.t_cas
            stats.row_misses += 1
            stats.activates += 1
        else:
            access = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            stats.row_conflicts += 1
            stats.activates += 1
        bank.open_row = row
        data_ready = start + access
        if priority:
            transfer_start = max(
                data_ready, min(self.bus_free, data_ready + cfg.t_burst)
            )
        else:
            transfer_start = max(data_ready, self.bus_free)
        self.bus_free = transfer_start + cfg.t_burst
        bank.next_free = max(bank.next_free, data_ready + cfg.t_burst)
        return transfer_start + cfg.t_burst


class Dram:
    """The full DRAM subsystem: address mapping plus channels."""

    # Address mapping (line address granularity): channel interleaved on the
    # low line bit; 128 consecutive per-channel lines map to one row of one
    # bank, so streams enjoy row-buffer locality while banks interleave at
    # row granularity.
    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.channels = [DramChannel(config) for _ in range(config.channels)]
        self.stats = DramStats()
        self._lines_per_row = max(1, config.row_bytes // 64)

    def map_address(self, line_addr: int) -> tuple[int, int, int]:
        """line address -> (channel, bank, row).

        The bank index XOR-folds higher row bits (standard bank-index
        hashing): without it, large power-of-two-aligned arrays all land
        in one bank and every stream access becomes a row conflict.
        """
        channel = line_addr % self.config.channels
        chan_line = line_addr // self.config.channels
        row_global = chan_line // self._lines_per_row
        banks = self.config.banks_per_channel
        folded = row_global
        folded ^= folded >> 12
        folded ^= folded >> 6
        folded ^= folded >> 3
        bank = folded % banks
        row = row_global // banks
        return channel, bank, row

    # Kinds served with demand-first priority at the controller.
    PRIORITY_KINDS = frozenset({"demand", "store", "ifetch"})

    def access(self, line_addr: int, now: int, is_write: bool = False,
               kind: str = "demand") -> int:
        """Schedule an access; returns its completion (data return) cycle."""
        channel, bank, row = self.map_address(line_addr)
        done = self.channels[channel].service(
            bank, row, now, self.stats, priority=kind in self.PRIORITY_KINDS
        )
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        return done

    def reset_stats(self) -> None:
        self.stats = DramStats()
