"""Port interfaces between a core's private hierarchy and shared memory.

The core↔memory seam is an explicit component graph: each per-core
:class:`~repro.memory.hierarchy.MemoryHierarchy` owns only its L1s and
talks to the LLC/DRAM complex (:class:`~repro.memory.shared.SharedLLC`)
through a :class:`MemoryPort`.  The protocol follows the classic
can/send/has/recv shape:

* ``can_accept(req)`` — may the endpoint take this request now?  For
  gated (load-type) requests this is the LLC MSHR admission check; the
  refusal cycle is latched on :attr:`MemoryPort.retry_at`.
* ``try_send(req)`` — deliver the request if ``can_accept``; returns
  ``False`` (and latches ``retry_at``) otherwise.  Sending while a
  response is still pending is a :class:`ProtocolError`.
* ``has_resp()`` — is a response waiting?
* ``recv()`` — take the response, exactly once.  Receiving with no
  response pending is a :class:`ProtocolError`.

The simulator's timing model is reservation-based (a request computes
its completion cycle at issue), so :class:`DirectLink` resolves a sent
request synchronously: ``try_send`` serves it against the endpoint and
latches the response for the following ``recv``.  The protocol
invariants (no send past backpressure, single delivery) are enforced
either way, which is what lets a future latency-modelled link drop in
behind the same interface.
"""

from __future__ import annotations

from typing import Optional, Protocol

__all__ = [
    "DirectLink",
    "MemRequest",
    "MemResponse",
    "MemoryEndpoint",
    "MemoryPort",
    "ProtocolError",
]


class ProtocolError(RuntimeError):
    """A port was driven outside the can/send/has/recv protocol."""


class MemRequest:
    """One request crossing a core→memory port.

    ``cycle`` is the cycle the request reaches the endpoint (the core's
    ``now`` plus its L1 latency); ``gate_cycle`` is the core-side issue
    cycle the MSHR admission check drains against.  ``gated`` marks
    load-type requests subject to MSHR backpressure — stores (nothing
    waits on them) and instruction fetches bypass the gate, exactly as
    the pre-port hierarchy did.
    """

    __slots__ = ("line_addr", "cycle", "kind", "core", "gate_cycle", "gated")

    def __init__(self, line_addr: int, cycle: int, kind: str, core: int = 0,
                 gate_cycle: int = 0, gated: bool = False) -> None:
        self.line_addr = line_addr
        self.cycle = cycle
        self.kind = kind
        self.core = core
        self.gate_cycle = gate_cycle
        self.gated = gated

    def __repr__(self) -> str:  # debugging aid only
        return (f"MemRequest(line={self.line_addr:#x}, cycle={self.cycle}, "
                f"kind={self.kind!r}, core={self.core}, "
                f"gated={self.gated})")


class MemResponse:
    """The endpoint's answer: completion cycle plus serving level."""

    __slots__ = ("done_cycle", "level", "merged")

    def __init__(self, done_cycle: int, level: str,
                 merged: bool = False) -> None:
        self.done_cycle = done_cycle
        self.level = level
        self.merged = merged

    def __repr__(self) -> str:
        return (f"MemResponse(done={self.done_cycle}, level={self.level!r}, "
                f"merged={self.merged})")


class MemoryEndpoint(Protocol):
    """What a port needs from the memory side of the seam."""

    def accept_at(self, req: MemRequest) -> int:
        """0 if the request can be taken now, else the retry cycle."""

    def serve(self, req: MemRequest) -> MemResponse:
        """Resolve an accepted request to a response."""


class MemoryPort:
    """Abstract core-side port.  Subclasses implement the transport."""

    #: Retry cycle latched by the last refused ``can_accept``/``try_send``.
    retry_at: int = 0

    def can_accept(self, req: MemRequest) -> bool:
        raise NotImplementedError

    def try_send(self, req: MemRequest) -> bool:
        raise NotImplementedError

    def has_resp(self) -> bool:
        raise NotImplementedError

    def recv(self) -> MemResponse:
        raise NotImplementedError


class DirectLink(MemoryPort):
    """Zero-latency point-to-point link to a reservation-timed endpoint.

    The endpoint computes completion cycles at issue, so the link
    resolves a send immediately and holds the response until ``recv``.
    One request may be outstanding at a time — the hierarchy drains every
    response in the same call that sent it, and the link enforces that.
    """

    __slots__ = ("endpoint", "_resp", "retry_at")

    def __init__(self, endpoint: MemoryEndpoint) -> None:
        self.endpoint = endpoint
        self._resp: Optional[MemResponse] = None
        self.retry_at = 0

    def can_accept(self, req: MemRequest) -> bool:
        if self._resp is not None:
            return False  # previous response not drained
        blocked = self.endpoint.accept_at(req)
        self.retry_at = blocked
        return blocked == 0

    def try_send(self, req: MemRequest) -> bool:
        if self._resp is not None:
            raise ProtocolError(
                "try_send with an undrained response pending (recv first)")
        blocked = self.endpoint.accept_at(req)
        if blocked:
            self.retry_at = blocked
            return False
        self._resp = self.endpoint.serve(req)
        return True

    def has_resp(self) -> bool:
        return self._resp is not None

    def recv(self) -> MemResponse:
        resp = self._resp
        if resp is None:
            raise ProtocolError("recv with no response pending "
                                "(has_resp() is False)")
        self._resp = None
        return resp
