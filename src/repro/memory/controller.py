"""Memory controller: the 64-entry memory queue in front of DRAM.

Models queuing delay: when the queue is full, a new request cannot be
accepted until the oldest in-flight request completes.  Occupancy is
tracked with a heap of completion times — exact for requests processed in
arrival order, and orders of magnitude cheaper than per-cycle simulation.
"""

from __future__ import annotations

import heapq

from ..config import DramConfig
from .dram import Dram


class MemoryController:
    """Accepts line requests, applies queueing, forwards to DRAM."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.dram = Dram(config)
        self._inflight: list[int] = []  # heap of completion cycles
        self.queue_full_delays = 0      # requests that waited for a queue slot
        self.total_queue_wait = 0

    def _drain(self, now: int) -> None:
        inflight = self._inflight
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)

    def occupancy(self, now: int) -> int:
        self._drain(now)
        return len(self._inflight)

    def request(self, line_addr: int, now: int, is_write: bool = False,
                kind: str = "demand") -> int:
        """Issue one line request; returns the completion cycle."""
        self._drain(now)
        start = now + self.config.controller_latency
        if (len(self._inflight) >= self.config.queue_entries
                and kind not in ("demand", "store", "ifetch")):
            # Queue full: the request waits for the oldest entry to finish.
            free_at = heapq.heappop(self._inflight)
            if free_at > start:
                self.queue_full_delays += 1
                self.total_queue_wait += free_at - start
                start = free_at
        done = self.dram.access(line_addr, start, is_write=is_write, kind=kind)
        heapq.heappush(self._inflight, done)
        return done

    @property
    def stats(self):
        return self.dram.stats
