"""Memory controller: the 64-entry memory queue in front of DRAM.

Models queuing delay: when the queue is full, a new request cannot be
accepted until the oldest in-flight request completes.  Occupancy is
tracked with a heap of completion times — exact for requests processed in
arrival order, and orders of magnitude cheaper than per-cycle simulation.
"""

from __future__ import annotations

import heapq

from ..config import DramConfig
from .dram import Dram


class MemoryController:
    """Accepts line requests, applies queueing, forwards to DRAM."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.dram = Dram(config)
        self._inflight: list[int] = []  # heap of completion cycles
        self.queue_full_delays = 0      # requests that waited for a queue slot
        self.total_queue_wait = 0

    def _drain(self, now: int) -> None:
        inflight = self._inflight
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)

    def occupancy(self, now: int) -> int:
        self._drain(now)
        return len(self._inflight)

    def request(self, line_addr: int, now: int, is_write: bool = False,
                kind: str = "demand") -> int:
        """Issue one line request; returns the completion cycle."""
        self._drain(now)
        start = now + self.config.controller_latency
        if (len(self._inflight) >= self.config.queue_entries
                and kind not in ("demand", "store", "ifetch")):
            # Queue full: the request waits for the oldest entry to finish.
            free_at = heapq.heappop(self._inflight)
            if free_at > start:
                self.queue_full_delays += 1
                self.total_queue_wait += free_at - start
                start = free_at
        done = self.dram.access(line_addr, start, is_write=is_write, kind=kind)
        heapq.heappush(self._inflight, done)
        return done

    # -- warm-state snapshots -------------------------------------------------

    def snapshot(self) -> tuple:
        """Queue + DRAM state (bank rows, bus/bank reservations, stats).
        ``by_kind`` is sorted so the serialized form is canonical."""
        s = self.dram.stats
        return (
            tuple(self._inflight),
            self.queue_full_delays,
            self.total_queue_wait,
            tuple(
                (tuple((b.next_free, b.open_row) for b in ch.banks),
                 ch.bus_free)
                for ch in self.dram.channels
            ),
            (s.reads, s.writes, s.row_hits, s.row_misses, s.row_conflicts,
             s.activates, s.busiest_wait, tuple(sorted(s.by_kind.items()))),
        )

    def restore(self, snap: tuple) -> None:
        inflight, full_delays, queue_wait, channels, stats = snap
        self._inflight = list(inflight)
        heapq.heapify(self._inflight)
        self.queue_full_delays = full_delays
        self.total_queue_wait = queue_wait
        for ch, (banks, bus_free) in zip(self.dram.channels, channels):
            ch.bus_free = bus_free
            for bank, (next_free, open_row) in zip(ch.banks, banks):
                bank.next_free = next_free
                bank.open_row = open_row
        s = self.dram.stats
        (s.reads, s.writes, s.row_hits, s.row_misses, s.row_conflicts,
         s.activates, s.busiest_wait, by_kind) = stats
        s.by_kind = dict(by_kind)

    @property
    def stats(self):
        return self.dram.stats
