"""The LLC/DRAM complex behind the core→memory port seam.

:class:`SharedLLC` owns everything below the L1s: the (inclusive) LLC
array, the memory controller + DRAM, the stream prefetcher, and the LLC
MSHR pool.  A single-core :class:`~repro.memory.hierarchy.MemoryHierarchy`
constructs a private instance, so the legacy path is one core connected
to its own complex — same arithmetic, same call order, bit-identical
stats.  ``repro.multicore`` instead builds one instance and connects N
hierarchies to it; the complex then additionally keeps per-core
accounting (LLC/DRAM traffic, MSHR occupancy and contention) and the
cross-core interference stats the shared scenarios are about:

* **cross-core evictions** — a fill from core A evicting a line that
  core B inserted (inclusion then also back-invalidates B's L1s);
* **inter-core prefetch pollution** — the subset of those where the
  evictor was a prefetch, plus *pollution misses*: the owner re-missing
  on a line another core pushed out (tracked over a bounded window of
  recent cross-evicted lines);
* **MSHR contention** — rejections that only happened because other
  cores held the shared pool (the rejected core's own occupancy was
  under its fair share), plus a per-core cap on speculative
  (runahead/prefetch) occupancy so one core's runahead flood cannot
  starve its neighbours — the fairness mechanism tests/test_multicore.py
  pins down.

``mc_hook`` (``None`` by default, so the single-core path never pays
for it) receives ``mc.*`` observability events:
``mc.cross_evict`` and ``mc.mshr_reject``.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Callable, Optional

from ..config import SystemConfig
from ..prefetch import StreamPrefetcher
from .cache import Cache
from .controller import MemoryController
from .ports import MemRequest, MemResponse

__all__ = ["CoreAccount", "SharedHierarchyError", "SharedLLC", "SharedStats"]

# Taxonomy of core-side request kinds; used for DRAM/LLC accounting.
CORE_KINDS = ("demand", "store", "runahead", "wrongpath")


class SharedHierarchyError(RuntimeError):
    """An operation assumed sole ownership of memory state that is
    actually shared with other cores (snapshot/restore, invariants)."""


class CoreAccount:
    """Per-core slice of the shared complex's accounting.

    ``llc_misses``/``llc_accesses``/``ifetch_llc_misses`` replace the
    counters the hierarchy used to own, so per-core MPKI and Fig. 16
    style traffic splits survive sharing unchanged.  The remaining
    fields are only maintained when more than one core is connected.
    """

    __slots__ = (
        "core", "llc_misses", "llc_accesses", "ifetch_llc_misses",
        "accesses", "hits", "fill_hits", "misses",
        "dram_reads", "dram_writes", "dram_by_kind",
        "prefetches_issued", "mshr_contended", "cross_evictions",
        "pollution_misses",
    )

    def __init__(self, core: int) -> None:
        self.core = core
        self.llc_misses: dict[str, int] = {k: 0 for k in CORE_KINDS}
        self.llc_accesses: dict[str, int] = {k: 0 for k in CORE_KINDS}
        self.ifetch_llc_misses = 0
        self.accesses = 0
        self.hits = 0
        self.fill_hits = 0
        self.misses = 0
        self.dram_reads = 0
        self.dram_writes = 0
        self.dram_by_kind: dict[str, int] = {}
        self.prefetches_issued = 0
        self.mshr_contended = 0
        self.cross_evictions = 0      # this core evicted another's line
        self.pollution_misses = 0     # this core re-missed a stolen line

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "llc_misses": dict(self.llc_misses),
            "llc_accesses": dict(self.llc_accesses),
            "ifetch_llc_misses": self.ifetch_llc_misses,
            "accesses": self.accesses,
            "hits": self.hits,
            "fill_hits": self.fill_hits,
            "misses": self.misses,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_by_kind": dict(self.dram_by_kind),
            "prefetches_issued": self.prefetches_issued,
            "mshr_contended": self.mshr_contended,
            "cross_evictions": self.cross_evictions,
            "pollution_misses": self.pollution_misses,
        }


class SharedStats:
    """Shared-level interference counters (all cores together)."""

    __slots__ = ("cross_core_evictions", "prefetch_pollution_evictions",
                 "pollution_misses", "mshr_contended_rejections",
                 "spec_cap_rejections")

    def __init__(self) -> None:
        self.cross_core_evictions = 0
        self.prefetch_pollution_evictions = 0
        self.pollution_misses = 0
        self.mshr_contended_rejections = 0
        self.spec_cap_rejections = 0

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class SharedLLC:
    """LLC + MSHRs + memory controller + prefetcher, N-core connectable."""

    # Speculative requests (runahead, prefetch) may not take the last few
    # MSHRs: demand misses must never queue behind a speculative flood.
    _SPECULATIVE_RESERVE = 4

    #: Bounded memory of recently cross-evicted lines (line -> owner),
    #: consulted on later misses to count pollution misses.
    _VICTIM_WINDOW = 8192

    def __init__(self, config: SystemConfig,
                 controller: Optional[MemoryController] = None) -> None:
        self.config = config
        self.llc = Cache(config.llc)
        self._external_controller = controller is not None
        self.controller = (controller if controller is not None
                           else MemoryController(config.dram))
        self.prefetcher: Optional[StreamPrefetcher] = (
            StreamPrefetcher(config.prefetcher)
            if config.prefetcher.enabled
            else None
        )
        self.llc.eviction_hook = self._on_evict
        # Outstanding LLC fills (MSHR occupancy): completion-cycle heap.
        self._fills: list[int] = []
        self._mshr_limit = config.llc.mshrs
        # Connected cores, in connect() order (core id == index).
        self._accounts: list[CoreAccount] = []
        self._l1_pairs: list[tuple[Cache, Cache]] = []
        self._hiers: list = []
        self._mc = False            # True once a second core connects
        # Per-core accounting is maintained whenever this complex is not
        # the legacy private construction: multiple cores, or a
        # dram-only share where each core has its own complex but the
        # controller (and its stats) is external and shared.
        self._track = self._external_controller
        # Multi-core-only state (untouched on the single-core path).
        self.stats = SharedStats()
        self._core_fills: list[list[int]] = []   # per-core, all kinds
        self._spec_fills: list[list[int]] = []   # per-core, runahead+prefetch
        self._line_owner: dict[int, int] = {}
        self._victims: "OrderedDict[int, int]" = OrderedDict()
        self._active_core = 0
        self._active_kind = "demand"
        self._active_cycle = 0
        #: Observability hook: ``hook(kind, cycle, **payload)`` for
        #: ``mc.*`` events.  ``None`` keeps every emission site dead.
        self.mc_hook: Optional[Callable] = None

    # -- wiring --------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self._accounts)

    @property
    def is_shared(self) -> bool:
        """True when sole-ownership assumptions (snapshot/restore,
        invariant sweeps) no longer hold for any single connected core."""
        return self._mc or self._external_controller

    def connect(self, hierarchy) -> tuple[int, CoreAccount]:
        """Attach one per-core hierarchy; returns (core_id, account).

        The hierarchy's L1s register for inclusive back-invalidation;
        requests from the returned core id are accounted to the
        returned :class:`CoreAccount`.
        """
        core = len(self._accounts)
        acct = CoreAccount(core)
        self._accounts.append(acct)
        self._l1_pairs.append((hierarchy.l1d, hierarchy.l1i))
        self._hiers.append(hierarchy)
        self._core_fills.append([])
        self._spec_fills.append([])
        self._mc = core > 0
        if self._mc:
            self._track = True
        return core, acct

    # -- inclusion / interference hook ---------------------------------------

    def _on_evict(self, line_addr: int, line) -> None:
        # Inclusive LLC: back-invalidate every connected core's L1s.
        for l1d, l1i in self._l1_pairs:
            l1d.invalidate(line_addr)
            l1i.invalidate(line_addr)
        if line.dirty:
            # Writeback traffic occupies DRAM but nothing waits on it.
            self.controller.request(line_addr, 0, is_write=True,
                                    kind="writeback")
        if (self.prefetcher is not None and line.prefetched
                and not line.referenced):
            self.prefetcher.record_unused_eviction()
        if self._track:
            evictor = self._active_core
            if line.dirty:
                self._accounts[evictor].dram_writes += 1
            if not self._mc:
                return
            owner = self._line_owner.pop(line_addr, -1)
            if owner >= 0 and owner != evictor:
                st = self.stats
                st.cross_core_evictions += 1
                self._accounts[evictor].cross_evictions += 1
                if self._active_kind == "prefetch":
                    st.prefetch_pollution_evictions += 1
                victims = self._victims
                victims[line_addr] = owner
                if len(victims) > self._VICTIM_WINDOW:
                    victims.popitem(last=False)
                hook = self.mc_hook
                if hook is not None:
                    hook("mc.cross_evict", self._active_cycle,
                         line=line_addr, evictor_core=evictor,
                         owner_core=owner, kind=self._active_kind)

    def _fdp_demand_touch(self, line, now: int) -> None:
        if (self.prefetcher is not None and line.prefetched
                and not line.referenced):
            line.referenced = True
            self.prefetcher.record_useful(late=line.ready_cycle > now)

    # -- MSHR pool -----------------------------------------------------------

    def _mshr_block(self, now: int, kind: str, core: int = 0) -> int:
        """0 if an LLC MSHR is free at ``now``, else the cycle to retry.

        Multi-core sharing adds a per-core speculative cap (an equal
        split of the non-reserved pool) and classifies pool-full
        rejections as *contended* when the rejected core's own occupancy
        was below its fair share of the pool.
        """
        fills = self._fills
        while fills and fills[0] <= now:
            heapq.heappop(fills)
        limit = self._mshr_limit
        speculative = kind in ("runahead", "prefetch")
        if speculative:
            limit -= self._SPECULATIVE_RESERVE
        if self._mc:
            cores = len(self._accounts)
            if speculative:
                # Fairness cap: one core's runahead/prefetch flood may
                # not occupy more than its share of the speculative pool.
                spec = self._spec_fills[core]
                while spec and spec[0] <= now:
                    heapq.heappop(spec)
                quota = max(1, limit // cores)
                if len(spec) >= quota:
                    self.stats.spec_cap_rejections += 1
                    self._reject_event(now, kind, core, contended=True)
                    return spec[0] if spec else now + 1
            if len(fills) >= limit:
                own = self._core_fills[core]
                while own and own[0] <= now:
                    heapq.heappop(own)
                if len(own) < max(1, self._mshr_limit // cores):
                    self._accounts[core].mshr_contended += 1
                    self.stats.mshr_contended_rejections += 1
                    self._reject_event(now, kind, core, contended=True)
                else:
                    self._reject_event(now, kind, core, contended=False)
                return fills[0] if fills else now + 1
            return 0
        if len(fills) < limit:
            return 0
        if not fills:
            # Degenerate config: fewer MSHRs than the speculative
            # reserve, so no slot ever frees for this kind — bounce a
            # cycle at a time (prefetches are simply dropped; runahead
            # loads retry until the interval ends).
            return now + 1
        # Conservative retry point: the earliest completion.  The caller
        # may retry while still over the limit and be bounced again; each
        # bounce moves it forward, so progress is guaranteed.
        return fills[0]

    def _reject_event(self, now: int, kind: str, core: int,
                      contended: bool) -> None:
        hook = self.mc_hook
        if hook is not None:
            hook("mc.mshr_reject", now, core=core, kind=kind,
                 contended=contended)

    def _register_fill(self, done: int, core: int = 0,
                       speculative: bool = False) -> None:
        heapq.heappush(self._fills, done)
        if self._mc:
            heapq.heappush(self._core_fills[core], done)
            if speculative:
                heapq.heappush(self._spec_fills[core], done)

    def mshr_occupancy(self, now: int) -> int:
        """LLC MSHRs in flight at ``now``.  Non-mutating (unlike
        ``_mshr_block``) so observers can sample it anywhere without
        perturbing the heap-drain schedule."""
        return sum(1 for done in self._fills if done > now)

    # -- port endpoint (ports.MemoryEndpoint) --------------------------------

    def accept_at(self, req: MemRequest) -> int:
        """0 to accept now, else the retry cycle (MSHR backpressure).

        Only gated (load-type) requests can be refused; a line already
        present or in flight in the LLC merges without a new MSHR.
        """
        if not req.gated:
            return 0
        if self.llc.probe(req.line_addr):
            return 0
        return self._mshr_block(req.gate_cycle, req.kind, req.core)

    def serve(self, req: MemRequest) -> MemResponse:
        """Resolve an accepted request against LLC/DRAM state."""
        if req.kind == "ifetch":
            return self._serve_ifetch(req)
        line_addr = req.line_addr
        kind = req.kind
        now = req.cycle
        core = req.core
        acct = self._accounts[core]
        if self._track:
            self._active_core = core
            self._active_kind = kind
            self._active_cycle = now
        llc_latency = self.llc.latency
        acct.llc_accesses[kind] = acct.llc_accesses.get(kind, 0) + 1
        line = self.llc.lookup(line_addr)
        if line is not None:
            self._fdp_demand_touch(line, now)
            if line.ready_cycle <= now:
                self.llc.stats.hits += 1
                done = now + llc_latency
                level, merged = "LLC", False
                if self._track:
                    acct.accesses += 1
                    acct.hits += 1
            else:
                self.llc.stats.fill_hits += 1
                done = max(line.ready_cycle, now + llc_latency)
                # Merged with an outstanding DRAM fill: the data still
                # comes from DRAM, which matters for runahead entry.
                level, merged = "DRAM", True
                if self._track:
                    acct.accesses += 1
                    acct.fill_hits += 1
        else:
            self.llc.stats.misses += 1
            acct.llc_misses[kind] = acct.llc_misses.get(kind, 0) + 1
            done = self.controller.request(line_addr, now + llc_latency,
                                           kind=kind)
            self._register_fill(done, core,
                                speculative=kind in ("runahead", "prefetch"))
            self.llc.fill(line_addr, done)
            level, merged = "DRAM", False
            if self._track:
                acct.accesses += 1
                acct.misses += 1
                acct.dram_reads += 1
                acct.dram_by_kind[kind] = acct.dram_by_kind.get(kind, 0) + 1
            if self._mc:
                self._line_owner[line_addr] = core
                owner = self._victims.pop(line_addr, None)
                if owner == core:
                    acct.pollution_misses += 1
                    self.stats.pollution_misses += 1
        if self.prefetcher is not None:
            hits = line is not None
            # Route through the requesting hierarchy so its per-core
            # observability shadow (Tracer) sees the issue.
            self._hiers[core]._issue_prefetches(
                self.prefetcher.on_demand_access(line_addr, hits, core), now
            )
        return MemResponse(done, level, merged=merged)

    def _serve_ifetch(self, req: MemRequest) -> MemResponse:
        """LLC side of an instruction fetch: no MSHR allocation, no
        prefetcher training — exactly the legacy ifetch arithmetic."""
        line_addr = req.line_addr
        t = req.cycle
        core = req.core
        acct = self._accounts[core]
        if self._track:
            self._active_core = core
            self._active_kind = "ifetch"
            self._active_cycle = t
        llc_line = self.llc.lookup(line_addr)
        if llc_line is not None and llc_line.ready_cycle <= t:
            self.llc.stats.hits += 1
            done = t + self.llc.latency
            if self._track:
                acct.accesses += 1
                acct.hits += 1
        elif llc_line is not None:
            self.llc.stats.fill_hits += 1
            done = llc_line.ready_cycle
            if self._track:
                acct.accesses += 1
                acct.fill_hits += 1
        else:
            self.llc.stats.misses += 1
            acct.ifetch_llc_misses += 1
            done = self.controller.request(line_addr, t + self.llc.latency,
                                           kind="ifetch")
            self.llc.fill(line_addr, done)
            if self._track:
                acct.accesses += 1
                acct.misses += 1
                acct.dram_reads += 1
                acct.dram_by_kind["ifetch"] = (
                    acct.dram_by_kind.get("ifetch", 0) + 1)
            if self._mc:
                self._line_owner[line_addr] = core
        return MemResponse(done, "DRAM" if llc_line is None else "LLC")

    # -- prefetch issue ------------------------------------------------------

    def issue_prefetches(self, lines: list[int], now: int,
                         core: int = 0) -> None:
        for line_addr in lines:
            if self.llc.probe(line_addr):
                continue
            if self._mshr_block(now, "prefetch", core):
                continue  # MSHRs full: drop the prefetch
            done = self.controller.request(line_addr, now, kind="prefetch")
            self._register_fill(done, core, speculative=True)
            if self._track:
                self._active_core = core
                self._active_kind = "prefetch"
                self._active_cycle = now
                acct = self._accounts[core]
                acct.prefetches_issued += 1
                acct.dram_reads += 1
                acct.dram_by_kind["prefetch"] = (
                    acct.dram_by_kind.get("prefetch", 0) + 1)
            self.llc.fill(line_addr, done, prefetched=True)
            if self._mc:
                self._line_owner[line_addr] = core

    def reset_interference(self) -> None:
        """Zero the interference counters (but keep line ownership).

        Called between warm-up and the timed run: warm-up is untimed and
        sequential per core, so interference measured there is an
        artifact of the warming order, not of concurrent execution.
        Ownership established by warm fills is kept — a timed eviction of
        another core's warm working set *is* real interference.
        """
        self.stats = SharedStats()
        self._victims.clear()
        for acct in self._accounts:
            acct.mshr_contended = 0
            acct.cross_evictions = 0
            acct.pollution_misses = 0

    # -- reporting -----------------------------------------------------------

    def contention_dict(self) -> dict:
        """Shared-level interference summary (multicore reporting)."""
        d = self.controller.stats
        return {
            "llc": {
                "accesses": self.llc.stats.accesses,
                "hits": self.llc.stats.hits,
                "fill_hits": self.llc.stats.fill_hits,
                "misses": self.llc.stats.misses,
                "evictions": self.llc.stats.evictions,
                "writebacks": self.llc.stats.writebacks,
            },
            "dram": {
                "reads": d.reads,
                "writes": d.writes,
                "row_hits": d.row_hits,
                "row_misses": d.row_misses,
                "bank_conflicts": d.row_conflicts,
                "activates": d.activates,
                "busiest_wait": d.busiest_wait,
                "by_kind": dict(d.by_kind),
            },
            "contention": self.stats.to_dict(),
            "per_core": [acct.to_dict() for acct in self._accounts],
        }
