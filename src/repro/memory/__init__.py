"""Memory substrate: caches, MSHR-style fill merging, DDR3 DRAM, controller."""

from .cache import Cache, CacheLine, CacheStats
from .controller import MemoryController
from .dram import Dram, DramChannel, DramStats
from .hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "AccessResult",
    "Cache",
    "CacheLine",
    "CacheStats",
    "Dram",
    "DramChannel",
    "DramStats",
    "MemoryController",
    "MemoryHierarchy",
]
