"""Memory substrate: caches, MSHR-style fill merging, DDR3 DRAM, controller.

The core↔memory seam is an explicit component graph: per-core
:class:`MemoryHierarchy` (L1s) → :class:`~repro.memory.ports.MemoryPort`
→ :class:`SharedLLC` (LLC + MSHRs + controller + prefetcher).  A
hierarchy built standalone owns a private complex; ``repro.multicore``
connects N hierarchies to one.
"""

from .cache import Cache, CacheLine, CacheStats
from .controller import MemoryController
from .dram import Dram, DramChannel, DramStats
from .hierarchy import AccessResult, MemoryHierarchy
from .ports import (DirectLink, MemRequest, MemResponse, MemoryEndpoint,
                    MemoryPort, ProtocolError)
from .shared import CoreAccount, SharedHierarchyError, SharedLLC, SharedStats

__all__ = [
    "AccessResult",
    "Cache",
    "CacheLine",
    "CacheStats",
    "CoreAccount",
    "DirectLink",
    "Dram",
    "DramChannel",
    "DramStats",
    "MemRequest",
    "MemResponse",
    "MemoryController",
    "MemoryEndpoint",
    "MemoryHierarchy",
    "MemoryPort",
    "ProtocolError",
    "SharedHierarchyError",
    "SharedLLC",
    "SharedStats",
]
