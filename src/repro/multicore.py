"""Multi-core simulation: N cores contending on a shared LLC/DRAM.

The paper evaluates the runahead buffer per-core; this module scales the
*modeled* system following Hashemi's dissertation direction — multiple
out-of-order cores (each with private L1s and its own runahead
machinery) connected through :mod:`repro.memory.ports` to one
:class:`~repro.memory.shared.SharedLLC` complex.  Two share levels:

* ``"llc,dram"`` — one LLC array, one MSHR pool, one prefetcher, one
  memory controller.  The full contention story: cross-core evictions,
  inter-core prefetch pollution, MSHR fairness.
* ``"dram"`` — private LLCs, shared memory controller: cores contend
  only for DRAM banks/bandwidth.

Scheduling is a min-heap over ``(core.now, core_index)``: the globally
earliest core steps one cycle (which may bulk-skip far ahead), then
re-enters the heap.  Each core's event arithmetic is untouched, ties
break by core index, and no randomness exists anywhere — so a given
(workload list, config list, share level) is deterministic, which
``System.fingerprints`` pins and tests/test_multicore.py gates.

Entry point::

    from repro import simulate_multicore
    result = simulate_multicore("mcf", cores=2,
                                configs=["rab_cc", "rab_cc"])
    result.per_core[0].ipc, result.shared["contention"]
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from .config import (SystemConfig, assert_shared_geometry,
                     build_named_config, default_system, validate_share)
from .core.processor import Processor, _WATCHDOG_CYCLES
from .core.sim import _resolve_workload
from .core.stats import SimStats
from .energy import EnergyModel, EnergyReport
from .memory import MemoryController, MemoryHierarchy, SharedLLC

__all__ = ["CoreSpec", "MulticoreResult", "System", "simulate_multicore",
           "trace_multicore"]


@dataclass
class CoreSpec:
    """One core of a multi-core system: a workload plus its config."""

    workload: Union[str, object]
    config: Optional[SystemConfig] = None
    config_name: str = ""


@dataclass
class MulticoreResult:
    """Everything one multi-core run produces."""

    per_core: list[SimStats]
    energy: list[EnergyReport]
    shared: dict
    system: "System"

    def to_dict(self) -> dict:
        return {
            "per_core": [s.to_dict() for s in self.per_core],
            "shared": self.shared,
        }


class System:
    """N cores, one bulk-skipping global clock, shared memory below L1."""

    def __init__(self, specs: Sequence[CoreSpec],
                 share: str = "llc,dram") -> None:
        if not specs:
            raise ValueError("at least one core required")
        self.share = validate_share(share)
        configs = []
        for spec in specs:
            cfg = spec.config if spec.config is not None else default_system()
            configs.append(cfg)
        assert_shared_geometry(configs, self.share)
        self.specs = list(specs)

        if "llc" in self.share:
            # One complex for everything below the L1s.
            self.shared = SharedLLC(configs[0])
            self.controller = self.shared.controller
            complexes = [self.shared] * len(specs)
        else:
            # Private LLCs, shared memory controller.
            self.controller = MemoryController(configs[0].dram)
            complexes = [SharedLLC(cfg, controller=self.controller)
                         for cfg in configs]
            self.shared = None
        self._complexes = complexes

        self.cores: list[Processor] = []
        for spec, cfg, cplx in zip(specs, configs, complexes):
            program, memory, init_regs = _resolve_workload(spec.workload)
            hierarchy = MemoryHierarchy(cfg, shared=cplx)
            proc = Processor(program, cfg, memory=memory,
                             init_regs=init_regs, hierarchy=hierarchy)
            self.cores.append(proc)
        self.num_cores = len(self.cores)

    # -- phases ------------------------------------------------------------------

    def warm_up(self, instructions: int) -> list[int]:
        """Functionally warm each core in core order.  Sequential by
        design: warm-up is untimed, and a fixed order keeps the shared
        LLC's warm contents deterministic.  (The jit lane is refused by
        the processors themselves when the hierarchy is shared.)

        Warm-up evictions are attributed to the warming core, then the
        interference counters are reset: warm-order artifacts are not
        contention.  Line ownership survives into the timed run."""
        executed = []
        for idx, core in enumerate(self.cores):
            cplx = self._complexes[idx]
            cplx._active_core = core.core_id
            cplx._active_kind = "warm"
            executed.append(core.warm_up(instructions))
        for cplx in dict.fromkeys(self._complexes):
            cplx.reset_interference()
        return executed

    def run(self, max_instructions: int,
            max_cycles: Optional[int] = None) -> list[SimStats]:
        """Run until every core commits ``max_instructions`` (or halts).

        A core that reaches its commit target (or HALT, or ``max_cycles``)
        drops out of the heap; the rest keep contending.  Drop-out changes
        the interference the remaining cores see — that is the modeled
        behaviour (a finished program stops issuing memory traffic), and
        it is deterministic.
        """
        import heapq
        targets = [core.committed + max_instructions for core in self.cores]
        heap = [(core.now, idx) for idx, core in enumerate(self.cores)
                if not core.halted and core.committed < targets[idx]]
        heapq.heapify(heap)
        while heap:
            now, idx = heapq.heappop(heap)
            core = self.cores[idx]
            if core.now != now:
                # Stale entry (never happens with one entry per core,
                # but cheap to guard).
                heapq.heappush(heap, (core.now, idx))
                continue
            core._step()
            if core.now - core._last_progress > _WATCHDOG_CYCLES:
                raise RuntimeError(
                    f"core {idx}: no forward progress for "
                    f"{_WATCHDOG_CYCLES} cycles at cycle {core.now} "
                    f"(mode={core.mode})")
            if core.halted or core.committed >= targets[idx]:
                continue
            if max_cycles is not None and core.now >= max_cycles:
                continue
            heapq.heappush(heap, (core.now, idx))
        stats = []
        for core in self.cores:
            if core.ra_policy.current is not None:
                core._finish_interval()
            stats.append(core._finalize_stats())
        return stats

    # -- reporting ---------------------------------------------------------------

    def shared_stats(self) -> dict:
        """Shared-level view: LLC totals, DRAM bank behaviour, the
        interference counters, and per-core fairness profiles."""
        d = self.controller.stats
        doc: dict = {
            "share": self.share,
            "cores": self.num_cores,
            "dram": {
                "reads": d.reads,
                "writes": d.writes,
                "row_hits": d.row_hits,
                "row_misses": d.row_misses,
                "bank_conflicts": d.row_conflicts,
                "activates": d.activates,
                "busiest_wait": d.busiest_wait,
                "by_kind": dict(d.by_kind),
            },
        }
        if self.shared is not None:
            doc.update(self.shared.contention_dict())
            doc["dram"]["by_kind"] = dict(d.by_kind)
        else:
            doc["contention"] = {
                "cross_core_evictions": 0,
                "prefetch_pollution_evictions": 0,
                "pollution_misses": 0,
                "mshr_contended_rejections": 0,
                "spec_cap_rejections": 0,
            }
            doc["per_core"] = [
                cplx._accounts[0].to_dict() for cplx in self._complexes]
        total_committed = sum(c.committed for c in self.cores) or 1
        doc["fairness"] = [
            {
                "core": idx,
                "config": self.specs[idx].config_name
                or core.config.runahead.mode.value,
                "committed": core.committed,
                "cycles": core.now,
                "ipc": core.committed / core.now if core.now else 0.0,
                "progress_share": core.committed / total_committed,
                "mshr_rejections": core.hierarchy.mshr_rejections,
                "runahead": core.ra_policy.fairness_summary(),
            }
            for idx, core in enumerate(self.cores)
        ]
        return doc

    def fingerprints(self) -> list[str]:
        """Canonical per-core fingerprints (see
        :func:`repro.fastpath.stats_fingerprint`) — the determinism
        gate's byte-identity comparison."""
        from .fastpath import stats_fingerprint
        return [stats_fingerprint(core.stats.to_dict(), None)
                for core in self.cores]


def simulate_multicore(
    workloads: Union[str, Sequence[Union[str, object]]],
    config: Optional[SystemConfig] = None,
    *,
    cores: Optional[int] = None,
    configs: Optional[Sequence[Union[str, SystemConfig]]] = None,
    share: str = "llc,dram",
    max_instructions: int = 20_000,
    warmup_instructions: int = 12_000,
    max_cycles: Optional[int] = None,
    config_names: Optional[Sequence[str]] = None,
    attach: Optional[Callable[["System"], None]] = None,
) -> MulticoreResult:
    """Run N cores against a shared memory system.

    ``workloads`` is either one name replicated across ``cores``
    homogeneous cores, or an explicit per-core list (mixed workloads).
    ``configs`` likewise: per-core named configs or SystemConfig
    instances; a single ``config`` replicates (deep-copied per core —
    core-private config state must not alias).  ``attach`` is called
    with the built System after warm-up, before the timed run (the
    multicore tracing seam).
    """
    if isinstance(workloads, (str,)) or not isinstance(workloads, Sequence):
        n = cores if cores is not None else 1
        workload_list = [workloads] * n
    else:
        workload_list = list(workloads)
        if cores is not None and cores != len(workload_list):
            raise ValueError(
                f"cores={cores} but {len(workload_list)} workloads given")
    n = len(workload_list)
    if not workload_list:
        raise ValueError("at least one workload required")

    names = list(config_names) if config_names is not None else [""] * n
    if len(names) != n:
        raise ValueError("config_names must match the number of cores")
    cfg_list: list[SystemConfig] = []
    if configs is not None:
        if len(configs) != n:
            raise ValueError(
                f"{len(configs)} configs for {n} cores")
        for i, c in enumerate(configs):
            if isinstance(c, str):
                cfg_list.append(build_named_config(c))
                if not names[i]:
                    names[i] = c
            else:
                cfg_list.append(copy.deepcopy(c))
    else:
        base = config if config is not None else default_system()
        cfg_list = [copy.deepcopy(base) for _ in range(n)]

    specs = [CoreSpec(w, cfg, name)
             for w, cfg, name in zip(workload_list, cfg_list, names)]
    system = System(specs, share=share)
    if warmup_instructions > 0:
        system.warm_up(warmup_instructions)
    if attach is not None:
        attach(system)
    per_core = system.run(max_instructions, max_cycles=max_cycles)
    energy = []
    for spec, cfg, stats in zip(specs, cfg_list, per_core):
        stats.config_name = spec.config_name or stats.config_name
        model = EnergyModel(cfg.energy, cfg.core.clock_ghz)
        report = model.compute(stats.energy_events, stats.cycles)
        stats.energy_report = report.to_dict()
        energy.append(report)
    return MulticoreResult(per_core=per_core, energy=energy,
                           shared=system.shared_stats(), system=system)


def trace_multicore(system: System, kinds: Optional[tuple] = None):
    """Attach per-core tracers plus shared-level ``mc.*`` events.

    Returns ``(core_traces, shared_trace, tracers)``.  Per-core tracers
    deliberately exclude the ``dram`` kind: with a shared controller,
    N tracers would each re-shadow ``controller.request`` and emit N
    duplicate events.  The single shared trace gets one dram shadow and
    the complex's ``mc.*`` interference events instead.
    """
    from .obs import Tracer

    core_kinds = kinds if kinds is not None else (
        "fetch_redirect", "runahead_enter", "runahead_exit",
        "chain_extract", "chain_cache", "prefetch_issue")
    if "dram" in core_kinds:
        raise ValueError(
            "per-core multicore tracers may not include 'dram' — the "
            "shared trace owns the controller shadow")
    core_traces = []
    tracers = []
    for core in system.cores:
        tracer = Tracer(kinds=core_kinds)
        tracer.attach(core)
        core_traces.append(tracer.trace)
        tracers.append(tracer)

    # One dram shadow on the shared controller (attached through core 0;
    # the controller object is the same for every core) plus the
    # complex's mc.* interference events.
    shared_tracer = Tracer(kinds=("dram",))
    shared_tracer.attach(system.cores[0])
    shared_trace = shared_tracer.trace
    tracers.append(shared_tracer)
    for cplx in dict.fromkeys(system._complexes):
        cplx.mc_hook = shared_trace.emit
    return core_traces, shared_trace, tracers
