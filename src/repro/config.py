"""System configuration (Table 1 of the paper).

Every microarchitectural parameter lives in a frozen-by-convention
dataclass here; :func:`default_system` reproduces Table 1:

    Core       : 4-wide issue, 192-entry ROB, 92-entry RS, hybrid branch
                 predictor, 3.2 GHz
    RA buffer  : 32 uops (8 B each, 256 B total)
    RA cache   : 512 B, 4-way, 8 B lines
    Chain cache: 2 entries, fully associative (512 B)
    L1         : 32 KB I + 32 KB D, 64 B lines, 2 ports, 3-cycle, 8-way
    LLC        : 1 MB, 8-way, 64 B lines, 18-cycle, inclusive
    Mem ctrl   : 64-entry memory queue
    Prefetcher : stream, 32 streams, distance 32, degree 2, into LLC, FDP
    DRAM       : DDR3, 2 channels, 8 banks/channel, 8 KB rows, CAS 13.75 ns,
                 800 MHz bus, bank conflicts & queuing modelled
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class RunaheadMode(enum.Enum):
    """Which runahead scheme the core uses when the ROB stalls on a miss."""

    NONE = "none"                    # plain out-of-order baseline
    TRADITIONAL = "traditional"      # Mutlu et al. HPCA'03 runahead
    BUFFER = "buffer"                # runahead buffer, no chain cache
    BUFFER_CHAIN_CACHE = "buffer_cc" # runahead buffer + chain cache
    HYBRID = "hybrid"                # Fig. 8 policy


@dataclass
class CoreConfig:
    """Superscalar out-of-order core parameters."""

    width: int = 4                  # fetch/decode/rename/issue/commit width
    rob_size: int = 192
    rs_size: int = 92
    load_queue_size: int = 64
    store_queue_size: int = 48
    num_phys_regs: int = 320        # 192 ROB + 32 arch + headroom
    clock_ghz: float = 3.2
    fetch_to_rename_cycles: int = 4  # front-end pipe depth (fetch+decode)
    branch_mispredict_redirect: int = 6  # extra redirect cycles past resolve
    int_alu_units: int = 4
    mem_ports: int = 2              # L1D ports
    fp_units: int = 2
    mul_div_units: int = 1
    # Execution latencies per uop class (cycles, excluding memory).
    latency_ialu: int = 1
    latency_imul: int = 4
    latency_idiv: int = 20
    latency_fadd: int = 3
    latency_fmul: int = 5
    latency_fdiv: int = 24
    latency_branch: int = 1
    latency_agu: int = 1            # address generation before cache access


@dataclass
class BranchPredictorConfig:
    """Hybrid (gshare + bimodal + chooser) predictor with BTB and RAS."""

    gshare_bits: int = 14
    bimodal_bits: int = 14
    chooser_bits: int = 14
    history_bits: int = 12
    btb_entries: int = 4096
    ras_entries: int = 16


@dataclass
class CacheConfig:
    """A single set-associative write-back cache."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 3
    mshrs: int = 32


@dataclass
class DramConfig:
    """DDR3 timing in core cycles (3.2 GHz core, CAS 13.75 ns = 44 cycles)."""

    channels: int = 2
    banks_per_channel: int = 8
    row_bytes: int = 8192
    t_cas: int = 44                 # column access (row-buffer hit)
    t_rcd: int = 44                 # row activate
    t_rp: int = 44                  # precharge (row conflict adds rp+rcd)
    t_burst: int = 16               # 64 B on an 800 MHz DDR3 bus @ 3.2 GHz core
    queue_entries: int = 64         # memory controller queue
    controller_latency: int = 90    # on-chip interconnect + controller
    row_timeout: int = 96           # idle cycles before a row auto-closes
                                    # (adaptive page policy + refresh)


@dataclass
class PrefetcherConfig:
    """POWER4-style stream prefetcher with FDP throttling (Table 1)."""

    enabled: bool = False
    num_streams: int = 32
    distance: int = 32
    degree: int = 2
    train_threshold: int = 2        # accesses to confirm a stream direction
    fdp_enabled: bool = True
    fdp_interval: int = 512         # prefetches per feedback interval
    fdp_high_accuracy: float = 0.75
    fdp_low_accuracy: float = 0.40


@dataclass
class RunaheadConfig:
    """Runahead policy and runahead-buffer structure sizes (§4, §5)."""

    mode: RunaheadMode = RunaheadMode.NONE
    enhancements: bool = False      # Mutlu ISCA'05 short/overlap filters (§4.6)
    enhancement_distance: int = 250 # policy 1 threshold (instructions)
    buffer_uops: int = 32           # runahead buffer capacity (32 x 8 B)
    chain_cache_entries: int = 2    # 2 x 32-uop chains = 512 B
    max_chain_length: int = 32      # Algorithm 1 MAXLENGTH
    reg_searches_per_cycle: int = 2 # dest-reg CAM bandwidth (§5)
    chain_readout_width: int = 4    # uops/cycle read from ROB into the buffer
    # Runahead cache for store->load forwarding during runahead (Table 1).
    runahead_cache_enabled: bool = True
    runahead_cache_bytes: int = 512
    runahead_cache_assoc: int = 4
    runahead_cache_line: int = 8
    min_interval_cycles: int = 60   # do not enter if the miss is nearly back
    collect_chain_stats: bool = False  # dataflow tracker for Figs 2-5, 13


@dataclass
class EnergyConfig:
    """Event-energy model (pJ per event) and static power (W).

    Calibrated so that on the no-prefetch baseline the front-end
    (fetch + decode + predictor + L1I) consumes ~40% of core dynamic
    power, the paper's own calibration point [Tegra 4 whitepaper].
    """

    # Front-end events (~160+110+120/4 = 300 pJ per uop: 40% of the
    # ~0.75 nJ/uop core total, the Tegra-4 calibration point).
    fetch_pj: float = 160.0         # per fetched uop (incl. predictor lookup)
    l1i_access_pj: float = 110.0    # per I-cache line read (16 uops/line)
    decode_pj: float = 120.0        # per decoded uop
    # Back-end events.
    rename_pj: float = 55.0
    rs_dispatch_pj: float = 45.0
    rs_wakeup_pj: float = 35.0      # per completing uop broadcast
    issue_pj: float = 25.0
    prf_read_pj: float = 18.0       # per source operand
    prf_write_pj: float = 27.0
    alu_pj: float = 70.0
    mul_pj: float = 210.0
    div_pj: float = 350.0
    fpu_pj: float = 250.0
    agu_pj: float = 35.0
    rob_write_pj: float = 36.0
    rob_read_pj: float = 27.0       # commit / chain readout
    # Memory events.
    l1d_access_pj: float = 180.0
    llc_access_pj: float = 1100.0
    dram_access_pj: float = 15000.0  # per 64 B line transfer (row hit)
    dram_activate_pj: float = 7000.0 # extra for row activate/precharge
    # Runahead-buffer specific events (§5 methodology).
    pc_cam_pj: float = 320.0        # ROB-wide PC CAM search
    destreg_cam_pj: float = 270.0   # ROB-wide dest-reg CAM, per searched reg
    sq_cam_pj: float = 90.0         # store-queue search per chain load
    chain_cache_read_pj: float = 70.0
    chain_cache_write_pj: float = 90.0
    rab_read_pj: float = 18.0       # per uop issued from the runahead buffer
    checkpoint_pj: float = 3600.0   # RAT + PRF reads + checkpoint RF write
    runahead_cache_pj: float = 35.0
    # Static power.
    core_leakage_w: float = 1.5
    frontend_leakage_w: float = 0.55   # included in core leakage split
    dram_background_w: float = 1.8


@dataclass
class SystemConfig:
    """Everything Table 1 specifies, in one object."""

    core: CoreConfig = field(default_factory=CoreConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 8, 64, 3)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, 64, 3)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 1024 * 1024, 8, 64, 18)
    )
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    runahead: RunaheadConfig = field(default_factory=RunaheadConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    def validate(self) -> None:
        """Sanity-check structural parameters; raises ``ValueError``."""
        if self.core.width < 1:
            raise ValueError("core width must be >= 1")
        if self.core.rob_size < self.core.width:
            raise ValueError("ROB must hold at least one fetch group")
        if self.core.num_phys_regs < self.core.rob_size + 32:
            raise ValueError("need at least rob_size + 32 physical registers")
        for cache in (self.l1i, self.l1d, self.llc):
            if cache.size_bytes % (cache.assoc * cache.line_bytes):
                raise ValueError(f"{cache.name}: size not divisible into sets")
        if self.runahead.buffer_uops < 1:
            raise ValueError("runahead buffer must hold at least one uop")
        if self.runahead.max_chain_length > self.runahead.buffer_uops:
            raise ValueError("chain length cap cannot exceed buffer capacity")


SAMPLING_TIERS = ("detailed", "two-level")


@dataclass
class SamplingConfig:
    """Two-tier execution plan (docs/simulator.md, "Two-tier simulation").

    ``tier="detailed"`` runs the cycle model for the whole instruction
    budget — the exact, golden-grid-pinned mode every paper figure uses.
    ``tier="two-level"`` runs the cycle model only inside fixed-stride
    detailed bursts: each ``stride_instructions``-long segment starts
    with ``ramp_instructions`` of detailed ramp-up (pipeline refill and
    prefetcher/runahead re-training, excluded from the rate estimates)
    followed by a ``window_instructions`` measured window, and the
    remainder is fast-forwarded through the functional interpreter
    (which still warms caches and the branch predictor).  Stats then
    describe the detailed bursts only, trading exactness for a large
    simulation-rate win; ``repro.fastpath.validate`` states the
    calibrated error bounds of the defaults.
    """

    tier: str = "detailed"
    ramp_instructions: int = 500
    window_instructions: int = 1_500
    stride_instructions: int = 40_000

    @property
    def is_sampled(self) -> bool:
        return self.tier == "two-level"

    @property
    def detailed_share(self) -> float:
        """Fraction of instructions the detailed core executes."""
        if not self.is_sampled:
            return 1.0
        return ((self.ramp_instructions + self.window_instructions)
                / self.stride_instructions)

    def validate(self) -> None:
        if self.tier not in SAMPLING_TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; choose from {SAMPLING_TIERS}")
        if self.is_sampled:
            if self.window_instructions < 1:
                raise ValueError("window_instructions must be >= 1")
            if self.ramp_instructions < 0:
                raise ValueError("ramp_instructions must be >= 0")
            detailed = self.ramp_instructions + self.window_instructions
            if self.stride_instructions <= detailed:
                raise ValueError(
                    "stride_instructions must exceed ramp + window "
                    "(the stride includes the detailed burst)")


def default_system() -> SystemConfig:
    """The Table 1 configuration: no prefetching, no runahead."""
    return SystemConfig()


def make_config(
    runahead_mode: RunaheadMode = RunaheadMode.NONE,
    prefetcher: bool = False,
    enhancements: bool = False,
    collect_chain_stats: bool = False,
    **runahead_overrides,
) -> SystemConfig:
    """Convenience constructor for the evaluation configurations (§6).

    ``runahead_overrides`` are applied to the :class:`RunaheadConfig`
    (e.g. ``buffer_uops=16`` for the ablation sweeps).
    """
    cfg = default_system()
    cfg.prefetcher = replace(cfg.prefetcher, enabled=prefetcher)
    cfg.runahead = replace(
        cfg.runahead,
        mode=runahead_mode,
        enhancements=enhancements,
        collect_chain_stats=collect_chain_stats,
        **runahead_overrides,
    )
    cfg.validate()
    return cfg


# Named evaluation configurations used throughout benchmarks/ (§6).
CONFIG_BUILDERS = {
    "baseline": lambda: make_config(),
    "runahead": lambda: make_config(RunaheadMode.TRADITIONAL),
    "runahead_enh": lambda: make_config(
        RunaheadMode.TRADITIONAL, enhancements=True
    ),
    "rab": lambda: make_config(RunaheadMode.BUFFER),
    "rab_cc": lambda: make_config(RunaheadMode.BUFFER_CHAIN_CACHE),
    "hybrid": lambda: make_config(RunaheadMode.HYBRID),
    "pf": lambda: make_config(prefetcher=True),
    "runahead_pf": lambda: make_config(RunaheadMode.TRADITIONAL, prefetcher=True),
    "runahead_enh_pf": lambda: make_config(
        RunaheadMode.TRADITIONAL, prefetcher=True, enhancements=True
    ),
    "rab_pf": lambda: make_config(RunaheadMode.BUFFER, prefetcher=True),
    "rab_cc_pf": lambda: make_config(
        RunaheadMode.BUFFER_CHAIN_CACHE, prefetcher=True
    ),
    "hybrid_pf": lambda: make_config(RunaheadMode.HYBRID, prefetcher=True),
}


def build_named_config(name: str) -> SystemConfig:
    """Instantiate one of the named evaluation configurations."""
    try:
        builder = CONFIG_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown config {name!r}; choose from {sorted(CONFIG_BUILDERS)}"
        ) from None
    return builder()


# -- multi-core sharing (repro.multicore) ------------------------------------

#: What the cores may share: the LLC/DRAM complex as a whole, or only the
#: memory controller (private LLCs contending for DRAM bandwidth).
SHARE_CHOICES = ("llc,dram", "dram")


def validate_share(share: str) -> str:
    """Normalize and validate a ``--share`` spec."""
    normalized = ",".join(part.strip() for part in share.split(",")
                          if part.strip())
    if normalized not in SHARE_CHOICES:
        raise ValueError(
            f"unknown share spec {share!r}; choose from {SHARE_CHOICES}")
    return normalized


def assert_shared_geometry(configs: list[SystemConfig],
                           share: str = "llc,dram") -> None:
    """Mixed-workload cores may differ in core/runahead configuration,
    but everything they *share* must be geometrically identical — one
    LLC array cannot be 1 MB for core 0 and 2 MB for core 1."""
    if not configs:
        raise ValueError("at least one core config required")
    first = configs[0]
    for i, cfg in enumerate(configs[1:], start=1):
        if cfg.dram != first.dram:
            raise ValueError(
                f"core {i} DRAM config differs from core 0; shared "
                f"memory requires identical DRAM geometry")
        if "llc" in share:
            if cfg.llc != first.llc:
                raise ValueError(
                    f"core {i} LLC config differs from core 0; a shared "
                    f"LLC requires identical LLC geometry")
            if cfg.prefetcher != first.prefetcher:
                raise ValueError(
                    f"core {i} prefetcher config differs from core 0; "
                    f"the prefetcher lives in the shared LLC")
        if cfg.llc.line_bytes != first.llc.line_bytes:
            raise ValueError(
                f"core {i} line size differs from core 0")
