"""The in-flight micro-op record: one object per ROB entry.

Carries rename state (physical registers), execution results, branch
prediction/resolution state, memory access results, and the poison flag
used by runahead execution.  The ROB keeps the decoded instruction with
the entry — the paper adds 4 bytes per ROB entry precisely so that decoded
uops remain readable for dependence-chain generation.
"""

from __future__ import annotations

from typing import Optional

from ..frontend.branch_predictor import PredictorSnapshot
from ..isa import Instruction


class InFlightUop:
    """A dynamic micro-op from rename to retirement."""

    __slots__ = (
        "seq", "pc", "inst",
        # Rename.
        "dest_arch", "dest_phys", "old_phys", "src1_phys", "src2_phys",
        "waiting", "in_rs",
        # Status.
        "issued", "completed", "squashed", "deferred",
        # Results.
        "value", "poisoned",
        # Memory.
        "mem_addr", "store_data", "addr_known", "data_known", "level",
        "done_cycle",
        "merged", "forwarded", "miss_issue_retired",
        # Branches.
        "predicted_next_pc", "predicted_taken", "snapshot",
        "actual_next_pc", "taken", "mispredicted",
        # Provenance.
        "runahead", "from_rab", "producer_seqs",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.dest_arch: Optional[int] = None
        self.dest_phys: Optional[int] = None
        self.old_phys: Optional[int] = None
        self.src1_phys: Optional[int] = None
        self.src2_phys: Optional[int] = None
        self.waiting = 0
        self.in_rs = True
        self.issued = False
        self.completed = False
        self.squashed = False
        self.deferred = False
        self.value = 0
        self.poisoned = False
        self.mem_addr: Optional[int] = None
        self.store_data = 0
        self.addr_known = False
        self.data_known = False
        self.level: Optional[str] = None
        self.done_cycle = 0
        self.merged = False
        self.forwarded = False
        self.miss_issue_retired = -1
        self.predicted_next_pc = -1
        self.predicted_taken = False
        self.snapshot: Optional[PredictorSnapshot] = None
        self.actual_next_pc = -1
        self.taken = False
        self.mispredicted = False
        self.runahead = False
        self.from_rab = False
        self.producer_seqs: tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            flag
            for flag, on in (
                ("I", self.issued), ("C", self.completed),
                ("S", self.squashed), ("P", self.poisoned),
                ("R", self.runahead),
            )
            if on
        )
        return f"<uop#{self.seq} pc={self.pc} {self.inst.opcode.name} {flags}>"
