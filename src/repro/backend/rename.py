"""Register renaming: physical register file (with poison bits) and RAT.

The physical register file carries, per register: the 64-bit value, a
ready bit, a *poison* bit (the runahead mechanism of Mutlu et al. — any
consumer of a poisoned source produces a poisoned destination), and the
sequence number of the producing uop (used by the dataflow tracker and by
dependence-chain generation).
"""

from __future__ import annotations

from ..isa import NUM_ARCH_REGS


class PhysicalRegisterFile:
    """Flat arrays indexed by physical register id."""

    def __init__(self, num_regs: int) -> None:
        if num_regs < NUM_ARCH_REGS + 1:
            raise ValueError("need more physical than architectural registers")
        self.num_regs = num_regs
        self.value = [0] * num_regs
        self.ready = bytearray([0]) * 1
        self.ready = bytearray(num_regs)
        self.poison = bytearray(num_regs)
        self.producer_seq = [-1] * num_regs

    def write(self, phys: int, value: int, poisoned: bool = False) -> None:
        self.value[phys] = value
        self.ready[phys] = 1
        self.poison[phys] = 1 if poisoned else 0

    def mark_pending(self, phys: int, producer_seq: int) -> None:
        self.ready[phys] = 0
        self.poison[phys] = 0
        self.producer_seq[phys] = producer_seq


class RenameState:
    """RAT + free list over a :class:`PhysicalRegisterFile`.

    ``rat`` is the speculative (front-end) mapping; ``commit_rat`` is the
    retirement-time mapping, which defines architectural state (used to
    take the runahead checkpoint).
    """

    def __init__(self, prf: PhysicalRegisterFile) -> None:
        self.prf = prf
        self.rat = list(range(NUM_ARCH_REGS))
        self.commit_rat = list(range(NUM_ARCH_REGS))
        self.free_list = list(range(NUM_ARCH_REGS, prf.num_regs))
        for phys in range(NUM_ARCH_REGS):
            prf.write(phys, 0)

    def free_count(self) -> int:
        return len(self.free_list)

    def alloc(self) -> int:
        return self.free_list.pop()

    def free(self, phys: int) -> None:
        self.free_list.append(phys)

    def arch_values(self) -> list[int]:
        """Committed architectural register values (the runahead checkpoint)."""
        value = self.prf.value
        return [value[self.commit_rat[arch]] for arch in range(NUM_ARCH_REGS)]

    def reset_to_values(self, values: list[int]) -> None:
        """Rebuild the mapping from scratch with the given architectural
        values — used on runahead exit to restore the checkpoint."""
        prf = self.prf
        self.rat = list(range(NUM_ARCH_REGS))
        self.commit_rat = list(range(NUM_ARCH_REGS))
        self.free_list = list(range(NUM_ARCH_REGS, prf.num_regs))
        for arch in range(NUM_ARCH_REGS):
            prf.write(arch, values[arch])
            prf.producer_seq[arch] = -1
