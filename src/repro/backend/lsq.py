"""Load/store queue: store->load forwarding and memory disambiguation.

Forwarding is word-granular (8 bytes, the ISA's only access size).  The
disambiguation policy is conservative: a load may not access memory while
an older store's address is still unknown (it is re-tried once the store
resolves).  Stores whose address computation was poisoned during runahead
are treated as non-aliasing, as in the paper's runahead scheme (runahead
is speculative; chains "are not required to be exact").
"""

from __future__ import annotations

import enum
from typing import Optional

from .inflight import InFlightUop


class ForwardResult(enum.Enum):
    NO_MATCH = "no_match"       # no older store aliases: go to memory
    WAIT = "wait"               # older store address unknown: retry later
    FORWARD = "forward"         # value available from the youngest match


class StoreQueue:
    """Program-ordered queue of in-flight stores."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: list[InFlightUop] = []

    def __len__(self) -> int:
        return len(self.entries)

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def push(self, uop: InFlightUop) -> None:
        self.entries.append(uop)

    def pop_oldest(self, uop: InFlightUop) -> None:
        if not self.entries or self.entries[0] is not uop:
            head = self.entries[0] if self.entries else None
            raise RuntimeError(
                f"store retired out of order: committing seq="
                f"{uop.seq} but the store-queue head is "
                f"{'empty' if head is None else f'seq={head.seq}'}"
            )
        self.entries.pop(0)

    def squash_younger(self, boundary_seq: int) -> None:
        entries = self.entries
        while entries and entries[-1].seq > boundary_seq:
            entries.pop()

    def clear(self) -> None:
        self.entries.clear()

    def search(self, word_addr: int, load_seq: int
               ) -> tuple[ForwardResult, Optional[InFlightUop]]:
        """Find the youngest store older than ``load_seq`` matching
        ``word_addr`` (8-byte granularity)."""
        for store in reversed(self.entries):
            if store.seq >= load_seq or store.squashed:
                continue
            if not store.addr_known:
                if store.poisoned:
                    continue  # poisoned-address store: assume no alias
                return ForwardResult.WAIT, store
            assert store.mem_addr is not None
            if store.mem_addr >> 3 == word_addr:
                if not store.data_known:
                    # STA done, STD pending: the load must wait for data.
                    return ForwardResult.WAIT, store
                return ForwardResult.FORWARD, store
        return ForwardResult.NO_MATCH, None

    def find_producing_store(self, word_addr: int, load_seq: int
                             ) -> Optional[InFlightUop]:
        """Chain-generation helper (Algorithm 1): the youngest older store
        with a *known* address matching the load's word."""
        for store in reversed(self.entries):
            if store.seq >= load_seq or store.squashed or not store.addr_known:
                continue
            assert store.mem_addr is not None
            if store.mem_addr >> 3 == word_addr:
                return store
        return None
