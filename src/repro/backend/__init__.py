"""Out-of-order back-end substrate: rename, PRF with poison bits, LSQ."""

from .inflight import InFlightUop
from .lsq import ForwardResult, StoreQueue
from .rename import PhysicalRegisterFile, RenameState

__all__ = [
    "ForwardResult",
    "InFlightUop",
    "PhysicalRegisterFile",
    "RenameState",
    "StoreQueue",
]
