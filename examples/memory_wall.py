#!/usr/bin/env python3
"""The memory wall, and who can climb it (the paper's Figs 1-2 story).

Compares three memory behaviours on every runahead scheme:

* a sequential stream      — all source data on chip, prefetcher's case;
* an indirect gather       — all source data on chip, runahead's case;
* a serial linked-list walk — source data OFF chip: nothing helps.

Usage::

    python examples/memory_wall.py
"""

from repro import RunaheadMode, make_config
from repro.core import Processor
from repro.workloads import gather, linked_list, streaming

WORKLOADS = [
    ("stream", lambda: streaming("ex_stream", num_arrays=1,
                                 filler_int=2)),
    ("gather", lambda: gather("ex_gather", deref_depth=1, filler_int=4)),
    ("list walk", lambda: linked_list("ex_list", num_nodes=1 << 15)),
]

CONFIGS = [
    ("baseline", make_config()),
    ("prefetcher", make_config(prefetcher=True)),
    ("runahead", make_config(RunaheadMode.TRADITIONAL)),
    ("runahead buffer", make_config(RunaheadMode.BUFFER_CHAIN_CACHE)),
]


def run(workload_fn, config, insts=5_000):
    workload = workload_fn()
    processor = Processor(workload.program, config, memory=workload.memory)
    processor.warm_up(2_000)
    return processor.run(insts)


def main() -> None:
    print(f"{'workload':11s}" + "".join(f"{name:>17s}"
                                        for name, _ in CONFIGS))
    print("-" * (11 + 17 * len(CONFIGS)))
    for wl_name, workload_fn in WORKLOADS:
        cells = []
        base_ipc = None
        for _, config in CONFIGS:
            stats = run(workload_fn, config)
            if base_ipc is None:
                base_ipc = stats.ipc
                cells.append(f"{stats.ipc:8.3f} ipc")
            else:
                cells.append(f"{100 * (stats.ipc / base_ipc - 1):+11.1f}%")
        print(f"{wl_name:11s}" + "".join(f"{c:>17s}" for c in cells))

    print()
    print("Streams: the prefetcher predicts the addresses outright.")
    print("Gathers: addresses are computable but unpredictable — runahead")
    print("  territory, and the filtered buffer runs furthest ahead.")
    print("List walk: the next address IS the missing data (source data")
    print("  off chip, Fig. 2) — no scheme can manufacture MLP.")


if __name__ == "__main__":
    main()
