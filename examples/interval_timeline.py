#!/usr/bin/env python3
"""Visualize runahead intervals on a timeline (the hybrid policy live).

Runs one workload under the hybrid policy with a commit trace attached
and renders an ASCII timeline: ``B`` = runahead-buffer mode (front-end
clock-gated), ``T`` = traditional runahead, ``.`` = normal execution.
omnetpp is the interesting default — its over-long chains make the
hybrid fall back to traditional runahead (all ``T``), while mcf runs
almost entirely in buffer mode (all ``B``).

Usage::

    python examples/interval_timeline.py [workload] [instructions]
"""

import sys

from repro import RunaheadMode, make_config
from repro.core import CommitTrace, Processor, render_interval_timeline
from repro.workloads import build_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    workload = build_workload(name)
    processor = Processor(workload.program,
                          make_config(RunaheadMode.HYBRID),
                          memory=workload.memory)
    trace = CommitTrace(capacity=32)
    processor.commit_hook = trace.on_commit
    processor.warm_up(12_000)
    stats = processor.run(instructions)

    print(f"{name} under the hybrid policy "
          f"(ipc {stats.ipc:.3f}, {stats.runahead_intervals} intervals, "
          f"{100 * stats.hybrid_rab_share:.0f}% of runahead cycles in the "
          "buffer)\n")
    timeline = render_interval_timeline(processor.ra_policy.intervals,
                                        stats.cycles)
    # Timeline lane + summary, then at most 10 interval detail lines.
    lines = timeline.split("\n")
    print("\n".join(lines[:3 + 10]))
    if len(lines) > 13:
        print(f"  ... {len(lines) - 13} more intervals")

    print("\nlast committed instructions:")
    print(trace.format(8))


if __name__ == "__main__":
    main()
