#!/usr/bin/env python3
"""Quickstart: the runahead buffer on a pointer-chasing workload.

Runs the mcf-like kernel on the baseline out-of-order core, then with
traditional runahead, the runahead buffer (+ chain cache), and the
hybrid policy, and prints the headline comparison — performance, MLP,
DRAM traffic and energy.

Usage::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import RunaheadMode, make_config, simulate

CONFIGS = [
    ("baseline", make_config()),
    ("runahead", make_config(RunaheadMode.TRADITIONAL)),
    ("runahead buffer", make_config(RunaheadMode.BUFFER_CHAIN_CACHE)),
    ("hybrid", make_config(RunaheadMode.HYBRID)),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    print(f"workload: {workload}  ({instructions} instructions)\n")
    header = (f"{'config':17s} {'IPC':>6s} {'speedup':>8s} {'MPKI':>6s} "
              f"{'misses/ivl':>10s} {'DRAM':>6s} {'energy':>9s}")
    print(header)
    print("-" * len(header))

    base_ipc = None
    base_energy = None
    for name, config in CONFIGS:
        result = simulate(workload, config, max_instructions=instructions)
        stats = result.stats
        if base_ipc is None:
            base_ipc, base_energy = stats.ipc, result.energy.total
        speedup = 100.0 * (stats.ipc / base_ipc - 1.0)
        energy = 100.0 * (result.energy.total / base_energy - 1.0)
        print(f"{name:17s} {stats.ipc:6.3f} {speedup:+7.1f}% "
              f"{stats.mpki:6.1f} {stats.misses_per_interval:10.1f} "
              f"{stats.dram_requests:6d} {energy:+8.1f}%")

    print("\nThe runahead buffer extracts the miss's dependence chain from")
    print("the ROB and loops it with the front-end clock-gated: more MLP")
    print("per interval than traditional runahead, at lower energy.")


if __name__ == "__main__":
    main()
