#!/usr/bin/env python3
"""Dependence-chain anatomy: watch Algorithm 1 at work.

Builds a small gather kernel, runs it until the ROB blocks on a miss,
then prints the dependence chain the pseudo-wakeup walk extracts — the
exact uops the runahead buffer will loop — next to the full loop body,
showing the "filtering" that gives the paper its title.

Usage::

    python examples/chain_anatomy.py
"""

from repro import RunaheadMode, make_config
from repro.core import Processor
from repro.workloads import gather


def main() -> None:
    workload = gather("anatomy", deref_depth=1, filler_fp=6, filler_int=2)
    config = make_config(RunaheadMode.BUFFER)
    processor = Processor(workload.program, config, memory=workload.memory)
    processor.warm_up(2_000)

    # Run until the first runahead-buffer interval begins.
    while processor.stats.rab_intervals == 0 and processor.now < 100_000:
        processor._step()
    if not processor.rab.active:
        raise SystemExit("no runahead interval occurred; increase run length")

    chain = processor.rab.chain
    chain_pcs = {uop.pc for uop in chain}

    print("loop body (the front-end's view)")
    print("-" * 54)
    loop_pcs = sorted({uop.pc for uop in chain}
                      | set(range(min(chain_pcs), min(chain_pcs) + 1)))
    del loop_pcs
    program = workload.program
    lo, hi = min(chain_pcs), max(chain_pcs)
    for pc in range(max(0, lo - 1), min(len(program), hi + 8)):
        marker = " <== on the dependence chain" if pc in chain_pcs else ""
        print(f"  pc {pc:3d}: {program.fetch(pc)!r}{marker}")

    print()
    print(f"extracted chain ({len(chain)} uops, capacity "
          f"{processor.rab.capacity}):")
    print("-" * 54)
    for uop in chain:
        print(f"  pc {uop.pc:3d}: {uop.inst!r}")

    print()
    print("The buffer loops these uops through rename while the front-end")
    print("is clock-gated; every iteration advances the induction register")
    print("and dereferences one more future element.")

    stats = processor.run(3_000)
    print(f"\nafter 3k more instructions: intervals={stats.rab_intervals} "
          f"chain-loop iterations={stats.rab_iterations} "
          f"misses/interval={stats.misses_per_interval:.1f}")


if __name__ == "__main__":
    main()
