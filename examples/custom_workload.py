#!/usr/bin/env python3
"""Author your own kernel with the mini-ISA ProgramBuilder and study how
the runahead buffer treats it.

The kernel below is a sparse matrix-vector-ish inner loop: stream the
column-index array, gather from the vector, accumulate.  The example
prints the behaviour of every runahead policy plus the chain-cache
statistics for the custom code.

Usage::

    python examples/custom_workload.py
"""

from repro import (
    DataMemory,
    ProgramBuilder,
    RunaheadMode,
    Workload,
    make_config,
)
from repro.core import Processor

COL_BASE = 1 << 26       # column-index array (streams)
VEC_BASE = 2 << 26       # gathered vector (random lines)
VEC_MASK = (16 << 20 >> 6) - 1   # 16 MB of vector, line-granular


def build_spmv() -> Workload:
    b = ProgramBuilder()
    b.label("init")
    b.li("R1", COL_BASE)                 # column cursor
    b.li("R2", COL_BASE + (8 << 20))     # end of the index array
    b.li("R3", VEC_BASE)
    b.li("R4", 6)                        # line shift
    b.label("row")
    b.load("R10", "R1", 0)               # col = cols[i]  (junk index)
    b.andi("R11", "R10", VEC_MASK)       # wrap into the vector
    b.shl("R11", "R11", "R4")
    b.add("R11", "R11", "R3")
    b.load("R12", "R11", 0)              # x[col]  <-- the delinquent load
    b.fmul("R13", "R12", "R12")          # a[i] * x[col] (values are junk)
    b.fadd("R14", "R14", "R13")          # accumulate
    b.addi("R1", "R1", 8)
    b.blt("R1", "R2", "row")
    b.jmp("init")
    return Workload("spmv", b.build(entry="init", name="spmv"),
                    memory=DataMemory(),
                    description="sparse matrix-vector inner loop")


def main() -> None:
    print("custom kernel: sparse matrix-vector inner loop\n")
    results = {}
    for name, mode in (
        ("baseline", RunaheadMode.NONE),
        ("runahead", RunaheadMode.TRADITIONAL),
        ("runahead buffer", RunaheadMode.BUFFER),
        ("buffer + chain cache", RunaheadMode.BUFFER_CHAIN_CACHE),
        ("hybrid", RunaheadMode.HYBRID),
    ):
        workload = build_spmv()
        processor = Processor(workload.program, make_config(mode),
                              memory=workload.memory)
        processor.warm_up(3_000)
        stats = processor.run(6_000)
        results[name] = stats
        print(f"{name:22s} ipc={stats.ipc:5.3f}  "
              f"intervals={stats.runahead_intervals:3d}  "
              f"misses/ivl={stats.misses_per_interval:5.1f}  "
              f"cc-hit={100 * stats.chain_cache_hit_rate:5.1f}%")

    base = results["baseline"].ipc
    best_name = max(results, key=lambda n: results[n].ipc)
    print(f"\nbest policy: {best_name} "
          f"({100 * (results[best_name].ipc / base - 1):+.1f}% vs baseline)")
    cc = results["buffer + chain cache"]
    print(f"chain cache: {cc.chain_cache_hits} hits / "
          f"{cc.chain_cache_misses} misses "
          f"(only {cc.chain_generations} pseudo-wakeup walks needed)")


if __name__ == "__main__":
    main()
