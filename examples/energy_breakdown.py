#!/usr/bin/env python3
"""Energy anatomy of runahead execution (the Figs 17-18 story).

Prints a per-component energy breakdown — front-end, back-end, runahead
structures, caches, DRAM, static — for the baseline, traditional
runahead and the runahead buffer, with ASCII bars.  The picture to look
for: traditional runahead inflates the front-end bar (it fetches and
decodes every runahead uop); the buffer's front-end bar stays at the
baseline level while a tiny "runahead structures" bar appears.

Usage::

    python examples/energy_breakdown.py [workload]
"""

import sys

from repro import RunaheadMode, make_config, simulate

COMPONENTS = [
    ("front-end", "frontend_dynamic"),
    ("back-end", "backend_dynamic"),
    ("runahead structs", "runahead_dynamic"),
    ("caches", "cache_dynamic"),
    ("DRAM dynamic", "dram_dynamic"),
    ("core leakage", "core_leakage"),
    ("DRAM background", "dram_background"),
]


def bar(value: float, scale: float, width: int = 36) -> str:
    n = int(round(width * value / scale)) if scale else 0
    return "#" * n


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    runs = {}
    for name, mode in (
        ("baseline", RunaheadMode.NONE),
        ("runahead", RunaheadMode.TRADITIONAL),
        ("runahead buffer", RunaheadMode.BUFFER_CHAIN_CACHE),
    ):
        runs[name] = simulate(workload, make_config(mode),
                              max_instructions=8_000)

    scale = max(max(getattr(r.energy, key) for _, key in COMPONENTS)
                for r in runs.values())
    base_total = runs["baseline"].energy.total

    for name, result in runs.items():
        energy = result.energy
        delta = 100.0 * (energy.total / base_total - 1.0)
        print(f"\n{name}  (total {energy.total * 1e6:.1f} uJ, "
              f"{delta:+.1f}% vs baseline, ipc {result.stats.ipc:.3f})")
        for label, key in COMPONENTS:
            value = getattr(energy, key)
            print(f"  {label:17s} {value * 1e6:7.2f} uJ  "
                  f"{bar(value, scale)}")

    ra = runs["runahead"].energy
    rab = runs["runahead buffer"].energy
    print("\nfront-end dynamic energy: runahead "
          f"{ra.frontend_dynamic * 1e6:.2f} uJ vs buffer "
          f"{rab.frontend_dynamic * 1e6:.2f} uJ "
          f"({100 * (1 - rab.frontend_dynamic / ra.frontend_dynamic):.0f}% "
          "saved by clock-gating)")


if __name__ == "__main__":
    main()
